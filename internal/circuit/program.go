package circuit

import (
	"slices"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/tree"
	"repro/internal/tva"
)

// This file implements the precompiled transition programs behind the
// builder hot path. A Program flattens one homogenized automaton's
// ι/δ relations — once — into the exact shape the per-box construction
// consumes:
//
//   - per leaf label, a complete leaf-box TEMPLATE: the γ vectors, the
//     var-gate sets, the ∪-gates and the reverse wires of the box are
//     label-determined (only VarGate.Node varies), so LeafBox degenerates
//     to stamping a node ID onto immutable shared slices;
//   - per inner label, the transition triples as dense int32 rules,
//     deduplicated and split into 0-state and 1-state outputs, so
//     InnerBox runs two tight loops with no map lookups and no
//     per-transition OneStates test.
//
// Programs are immutable and shared: a process-wide cache keyed by the
// automaton's CONTENT (not pointer identity) hands the same *Program to
// every Builder over an equal automaton, so the many pipelines of a
// QuerySet engine — which each translate and homogenize their query
// afresh — compile the rule tables once instead of once per
// registration.

// Program is the precompiled transition program of one homogenized
// binary TVA. It is immutable after compileProgram returns; any number
// of Builders (on any goroutines) may share one.
type Program struct {
	numStates int
	oneStates bitset.Set
	leaf      map[tree.Label]*leafTemplate
	inner     map[tree.Label]*innerProgram
	// emptyLeaf serves labels with no initial rules: every state ⊥.
	emptyLeaf *leafTemplate

	// The canonical rule sequences the program was compiled from, kept
	// for the content-equality check of the cache (gate order follows
	// rule order, so order is part of the identity).
	init  []tva.InitRule
	delta []tva.Triple
	fp    uint64

	// cacheUsed is the clock-eviction reference bit: set on every cache
	// hit, cleared by the sweeping hand, evicted when found clear.
	// Guarded by programCache.mu — it is cache metadata, not program
	// content, so the program itself stays immutable and shareable.
	cacheUsed bool
}

// Fingerprint returns the 64-bit content fingerprint of the automaton's
// canonical rule sequences — the key the process-wide program cache
// hashes by, and the content key the engine's multi-query optimizer
// keys shared pipelines by. Equal content always yields equal
// fingerprints; callers that must not alias distinct content on a hash
// collision verify with ContentEqual.
func (p *Program) Fingerprint() uint64 { return p.fp }

// ContentEqual reports whether two programs were compiled from the same
// canonical rule content (states, 1-states, ι and δ sequences, order
// included). Content-equal programs build gate-for-gate identical boxes
// over any term, which is the soundness condition for sharing one
// enumeration pipeline across registrations.
func (p *Program) ContentEqual(q *Program) bool {
	return p == q || equalProgram(p, q)
}

// leafTemplate is the label-determined part of a leaf box. All slices
// are shared verbatim by every box instantiated from the template (boxes
// are immutable, so sharing is safe); only Vars is rebuilt per box, to
// stamp the node ID into the var gates.
type leafTemplate struct {
	gammaKind []GammaKind
	gammaIdx  []int32
	varSets   []tree.VarSet // var-gate sets, in local gate order
	unions    []UnionGate
	varOut    [][]int32
	sig       uint64
}

// innerRule is one δ triple in dense form.
type innerRule struct{ left, right, out int32 }

// innerProgram is the per-label transition program of inner boxes.
type innerProgram struct {
	one  []innerRule // triples into 1-states: build ∪-gate inputs
	zero []innerRule // triples into 0-states: γ is ⊤ iff both children ⊤
}

// leafFor returns the template for a leaf label.
func (p *Program) leafFor(label tree.Label) *leafTemplate {
	if lt, ok := p.leaf[label]; ok {
		return lt
	}
	return p.emptyLeaf
}

// canonicalRules returns the automaton's rule sequences with exact
// duplicates dropped, preserving first-occurrence order (the old
// map-based construction deduplicated implicitly; the flat loops rely on
// the program being duplicate-free, and gate order follows rule order).
func canonicalRules(a *tva.Binary) (init []tva.InitRule, delta []tva.Triple) {
	initSeen := map[tva.InitRule]bool{}
	for _, r := range a.Init {
		if initSeen[r] {
			continue
		}
		initSeen[r] = true
		init = append(init, r)
	}
	deltaSeen := map[tva.Triple]bool{}
	for _, t := range a.Delta {
		if deltaSeen[t] {
			continue
		}
		deltaSeen[t] = true
		delta = append(delta, t)
	}
	return init, delta
}

// compileProgram flattens the automaton's canonical rules. The automaton
// must be homogenized (NewBuilder validates before compiling).
func compileProgram(a *tva.Binary, init []tva.InitRule, delta []tva.Triple, fp uint64) *Program {
	p := &Program{
		numStates: a.NumStates,
		oneStates: a.OneStates.Clone(),
		leaf:      map[tree.Label]*leafTemplate{},
		inner:     map[tree.Label]*innerProgram{},
		init:      init,
		delta:     delta,
		fp:        fp,
	}
	for _, lt := range groupInitLabels(p.init) {
		p.leaf[lt.label] = compileLeafTemplate(a, lt.rules)
	}
	p.emptyLeaf = compileLeafTemplate(a, nil)
	for _, t := range p.delta {
		ip := p.inner[t.Label]
		if ip == nil {
			ip = &innerProgram{}
			p.inner[t.Label] = ip
		}
		r := innerRule{left: int32(t.Left), right: int32(t.Right), out: int32(t.Out)}
		if a.OneStates.Has(int(t.Out)) {
			ip.one = append(ip.one, r)
		} else {
			ip.zero = append(ip.zero, r)
		}
	}
	return p
}

// labelRules groups initial rules per label, preserving rule order.
type labelRules struct {
	label tree.Label
	rules []tva.InitRule
}

func groupInitLabels(init []tva.InitRule) []labelRules {
	idx := map[tree.Label]int{}
	var out []labelRules
	for _, r := range init {
		i, ok := idx[r.Label]
		if !ok {
			i = len(out)
			idx[r.Label] = i
			out = append(out, labelRules{label: r.Label})
		}
		out[i].rules = append(out[i].rules, r)
	}
	return out
}

// compileLeafTemplate builds the leaf-box template from one label's
// initial rules, following the leaf case of Lemma 3.7 exactly as the
// old per-box construction did (same gate order: var gates in first-use
// order, ∪-gate inputs sorted ascending, ∪-gates in state order).
func compileLeafTemplate(a *tva.Binary, rules []tva.InitRule) *leafTemplate {
	nq := a.NumStates
	lt := &leafTemplate{
		gammaKind: make([]GammaKind, nq),
		gammaIdx:  make([]int32, nq),
	}
	for i := range lt.gammaIdx {
		lt.gammaIdx[i] = -1
	}
	varIdx := map[tree.VarSet]int32{}
	ruleSets := make([][]tree.VarSet, nq)
	emptyRule := make([]bool, nq)
	for _, r := range rules {
		if r.Set.Empty() {
			emptyRule[r.State] = true
		} else {
			ruleSets[r.State] = append(ruleSets[r.State], r.Set)
		}
	}
	for q := 0; q < nq; q++ {
		if !a.OneStates.Has(q) {
			// 0-state: ⊤ iff the empty annotation reaches q here.
			if emptyRule[q] {
				lt.gammaKind[q] = GammaTop
			} else {
				lt.gammaKind[q] = GammaBottom
			}
			continue
		}
		sets := ruleSets[q]
		if len(sets) == 0 {
			lt.gammaKind[q] = GammaBottom
			continue
		}
		u := UnionGate{}
		seen := map[tree.VarSet]bool{}
		for _, y := range sets {
			if seen[y] {
				continue
			}
			seen[y] = true
			vi, ok := varIdx[y]
			if !ok {
				vi = int32(len(lt.varSets))
				varIdx[y] = vi
				lt.varSets = append(lt.varSets, y)
			}
			u.Vars = append(u.Vars, vi)
		}
		sort.Slice(u.Vars, func(i, j int) bool { return u.Vars[i] < u.Vars[j] })
		lt.gammaKind[q] = GammaUnion
		lt.gammaIdx[q] = int32(len(lt.unions))
		lt.unions = append(lt.unions, u)
	}
	lt.varOut = make([][]int32, len(lt.varSets))
	for ui, u := range lt.unions {
		for _, v := range u.Vars {
			lt.varOut[v] = append(lt.varOut[v], int32(ui))
		}
	}
	lt.sig = leafSig(lt)
	return lt
}

// ---- structural signatures ----

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type sigHash uint64

func (h *sigHash) mix(x uint64) {
	v := uint64(*h) ^ x
	*h = sigHash(v * fnvPrime)
}

// computeSig hashes the gate structure of a box: the γ vectors, the
// var-gate sets, the ×-gates and the ∪-gate input lists. The node ID,
// the label and the child pointers are deliberately EXCLUDED — the
// signature captures exactly "would this box behave identically over the
// same children", which is what signature-pruned repair compares (two
// labels the automaton does not distinguish yield the same signature).
func computeSig(b *Box) uint64 {
	h := sigHash(fnvOffset)
	h.mix(uint64(len(b.GammaKind)))
	for q, k := range b.GammaKind {
		if k != GammaBottom {
			h.mix(uint64(q)<<8 | uint64(k))
			h.mix(uint64(uint32(b.GammaIdx[q])))
		}
	}
	h.mix(uint64(len(b.Vars)))
	for _, v := range b.Vars {
		h.mix(uint64(v.Set))
	}
	h.mix(uint64(len(b.Times)))
	for _, t := range b.Times {
		h.mix(uint64(uint32(t.Left))<<32 | uint64(uint32(t.Right)))
	}
	h.mix(uint64(len(b.Unions)))
	for i := range b.Unions {
		u := &b.Unions[i]
		for _, lst := range [][]int32{u.Vars, u.Times, u.LeftUnions, u.RightUnions} {
			h.mix(uint64(len(lst)))
			for _, x := range lst {
				h.mix(uint64(uint32(x)))
			}
		}
	}
	return uint64(h)
}

// leafSig computes the template's signature without instantiating a box.
func leafSig(lt *leafTemplate) uint64 {
	b := &Box{
		GammaKind: lt.gammaKind,
		GammaIdx:  lt.gammaIdx,
		Unions:    lt.unions,
		Vars:      make([]VarGate, len(lt.varSets)),
	}
	for i, s := range lt.varSets {
		b.Vars[i] = VarGate{Set: s}
	}
	return computeSig(b)
}

// ShapeEqual reports whether two boxes have identical local gate
// structure: same γ vectors, var-gate sets, ×-gates and ∪-gate wiring.
// Node IDs, labels and child pointers are not compared (see computeSig).
// It is the exact relation Sig approximates. The engine's runtime reuse
// tests are LeafReusable (leaves: template signature + structural
// verify) and pointer-equal children + unchanged label (inner boxes);
// both imply ShapeEqual, which is what the pruned-vs-full differential
// suite checks box for box over whole published circuits.
func ShapeEqual(a, b *Box) bool {
	if len(a.GammaKind) != len(b.GammaKind) || len(a.Vars) != len(b.Vars) ||
		len(a.Times) != len(b.Times) || len(a.Unions) != len(b.Unions) {
		return false
	}
	for q := range a.GammaKind {
		if a.GammaKind[q] != b.GammaKind[q] || a.GammaIdx[q] != b.GammaIdx[q] {
			return false
		}
	}
	for i := range a.Vars {
		if a.Vars[i].Set != b.Vars[i].Set {
			return false
		}
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			return false
		}
	}
	for i := range a.Unions {
		ua, ub := &a.Unions[i], &b.Unions[i]
		if !slices.Equal(ua.Vars, ub.Vars) || !slices.Equal(ua.Times, ub.Times) ||
			!slices.Equal(ua.LeftUnions, ub.LeftUnions) || !slices.Equal(ua.RightUnions, ub.RightUnions) {
			return false
		}
	}
	return true
}

// LeafReusable reports whether an existing box can serve as the leaf box
// for (label, node): exactly when LeafBox(label, node) would build a box
// with identical gates. The dynamic engine's signature-pruned repair
// uses this to keep the old (box, index, counts) unit across a relabel
// that does not change the leaf's γ shape — the common case for labels
// the query does not distinguish — without building anything.
func (bd *Builder) LeafReusable(b *Box, label tree.Label, node tree.NodeID) bool {
	if b == nil || !b.IsLeaf() || b.Node != node {
		return false
	}
	lt := bd.prog.leafFor(label)
	if b.Sig != lt.sig {
		return false
	}
	// Fast path: the box was instantiated from this very template (its γ
	// slices are the template's).
	if len(b.GammaKind) > 0 && len(lt.gammaKind) > 0 && &b.GammaKind[0] == &lt.gammaKind[0] {
		return true
	}
	// Signature collision or a box from another builder generation:
	// verify structurally.
	if len(b.Vars) != len(lt.varSets) || len(b.Unions) != len(lt.unions) || len(b.Times) != 0 {
		return false
	}
	for q := range b.GammaKind {
		if b.GammaKind[q] != lt.gammaKind[q] || b.GammaIdx[q] != lt.gammaIdx[q] {
			return false
		}
	}
	for i := range b.Vars {
		if b.Vars[i].Set != lt.varSets[i] || b.Vars[i].Node != node {
			return false
		}
	}
	for i := range b.Unions {
		ua, ub := &b.Unions[i], &lt.unions[i]
		if !slices.Equal(ua.Vars, ub.Vars) || len(ua.Times) != 0 ||
			len(ua.LeftUnions) != 0 || len(ua.RightUnions) != 0 {
			return false
		}
	}
	return true
}

// ---- program cache ----

// programCache shares compiled programs across Builders by automaton
// CONTENT: two automata with identical (states, 1-states, ι, δ)
// sequences map to the same *Program even when they are distinct
// objects, which is what lets every pipeline of a QuerySet engine (each
// registration translates and homogenizes afresh) skip recompilation.
//
// The cache is BOUNDED under register/unregister churn: at most
// programCacheCap entries, enforced by coarse CLOCK eviction (ring is
// the clock, each entry carries a reference bit set on hit; the
// sweeping hand clears bits until it finds one already clear and evicts
// that entry). A long-running process cycling through millions of
// distinct one-off queries therefore holds a fixed-size working set of
// hot programs instead of growing without bound, while automata beyond
// the cap still compile — they just displace the coldest entry.
// Evicted programs stay fully usable by the builders already holding
// them; only future lookups recompile.
var programCache struct {
	mu   sync.Mutex
	m    map[uint64][]*Program
	ring []*Program // every cached entry, in clock order
	hand int        // next ring slot the eviction sweep examines
}

const programCacheCap = 256

// ProgramCacheSize returns the current number of cached compiled
// programs (process-wide; at most ProgramCacheCap). Exposed for the
// engine's stats surface and the cache-churn tests.
func ProgramCacheSize() int {
	programCache.mu.Lock()
	defer programCache.mu.Unlock()
	return len(programCache.ring)
}

// ProgramCacheCap is the entry bound of the process-wide program cache.
func ProgramCacheCap() int { return programCacheCap }

// evictProgramLocked frees one ring slot by the clock sweep: hit
// entries get a second chance (bit cleared, hand advances), the first
// clear entry found is removed from both the ring and the fingerprint
// map. Terminates in at most two sweeps. Callers hold programCache.mu
// with a nonempty ring.
func evictProgramLocked() {
	for {
		victim := programCache.ring[programCache.hand]
		if victim.cacheUsed {
			victim.cacheUsed = false
			programCache.hand = (programCache.hand + 1) % len(programCache.ring)
			continue
		}
		chain := programCache.m[victim.fp]
		i := slices.Index(chain, victim)
		chain = slices.Delete(chain, i, i+1)
		if len(chain) == 0 {
			delete(programCache.m, victim.fp)
		} else {
			programCache.m[victim.fp] = chain
		}
		last := len(programCache.ring) - 1
		programCache.ring[programCache.hand] = programCache.ring[last]
		programCache.ring[last] = nil
		programCache.ring = programCache.ring[:last]
		if programCache.hand >= len(programCache.ring) {
			programCache.hand = 0
		}
		return
	}
}

func fingerprint(numStates int, one bitset.Set, init []tva.InitRule, delta []tva.Triple) uint64 {
	h := sigHash(fnvOffset)
	h.mix(uint64(numStates))
	one.ForEach(func(q int) bool {
		h.mix(uint64(q) | 1<<32)
		return true
	})
	h.mix(uint64(len(init)))
	for _, r := range init {
		mixString(&h, string(r.Label))
		h.mix(uint64(r.Set))
		h.mix(uint64(r.State))
	}
	h.mix(uint64(len(delta)))
	for _, t := range delta {
		mixString(&h, string(t.Label))
		h.mix(uint64(t.Left)<<42 | uint64(t.Right)<<21 | uint64(t.Out))
	}
	return uint64(h)
}

func mixString(h *sigHash, s string) {
	h.mix(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.mix(uint64(s[i]))
	}
}

// equalProgram reports whether the cached program was compiled from the
// same rule content the candidate program was.
func equalProgram(a, b *Program) bool {
	if a.numStates != b.numStates || !a.oneStates.Equal(b.oneStates) ||
		len(a.init) != len(b.init) || len(a.delta) != len(b.delta) {
		return false
	}
	for i := range a.init {
		if a.init[i] != b.init[i] {
			return false
		}
	}
	for i := range a.delta {
		if a.delta[i] != b.delta[i] {
			return false
		}
	}
	return true
}

// programFor returns the shared program for the automaton, compiling and
// caching it on first sight of this rule content.
func programFor(a *tva.Binary) *Program {
	init, delta := canonicalRules(a)
	fp := fingerprint(a.NumStates, a.OneStates, init, delta)
	probe := &Program{numStates: a.NumStates, oneStates: a.OneStates, init: init, delta: delta}

	programCache.mu.Lock()
	if programCache.m == nil {
		programCache.m = map[uint64][]*Program{}
	}
	for _, cached := range programCache.m[fp] {
		if equalProgram(cached, probe) {
			cached.cacheUsed = true
			programCache.mu.Unlock()
			return cached
		}
	}
	programCache.mu.Unlock()

	// Compile off the lock (template building is the expensive part);
	// re-check before inserting so concurrent compilers converge on one
	// shared program.
	p := compileProgram(a, init, delta, fp)
	programCache.mu.Lock()
	defer programCache.mu.Unlock()
	for _, cached := range programCache.m[fp] {
		if equalProgram(cached, p) {
			cached.cacheUsed = true
			return cached
		}
	}
	if len(programCache.ring) >= programCacheCap {
		evictProgramLocked()
	}
	p.cacheUsed = true
	programCache.m[fp] = append(programCache.m[fp], p)
	programCache.ring = append(programCache.ring, p)
	return p
}

// Program returns the builder's shared transition program; two builders
// over content-equal automata report the same *Program (the cache above).
// Exposed for the sharing tests and for cache-aware diagnostics.
func (bd *Builder) Program() *Program { return bd.prog }
