package circuit

import "repro/internal/tree"

// Evaluator computes captured sets S(g) (Definition 3.1) by brute-force
// recursion with memoization. It materializes whole sets of assignments,
// so it is exponential in general; it exists as the ground truth the
// enumeration algorithms are tested against.
type Evaluator struct {
	memo map[*Box][]map[string]tree.Assignment
}

// NewEvaluator returns a fresh evaluator (memoization is per instance, so
// evaluate-then-update-then-evaluate must use a new one).
func NewEvaluator() *Evaluator {
	return &Evaluator{memo: map[*Box][]map[string]tree.Assignment{}}
}

// VarAssignment returns the single assignment captured by var gate v of
// box b: {⟨Z:n⟩ | Z ∈ Set}.
func (e *Evaluator) VarAssignment(b *Box, v int) tree.Assignment {
	g := b.Vars[v]
	var out tree.Assignment
	for _, z := range g.Set.Vars() {
		out = append(out, tree.Singleton{Var: z, Node: g.Node})
	}
	return out.Normalize()
}

// Times returns S of ×-gate t of box b: the relational product of the
// captured sets of its two child ∪-gates.
func (e *Evaluator) Times(b *Box, t int) map[string]tree.Assignment {
	g := b.Times[t]
	left := e.Union(b.Left, int(g.Left))
	right := e.Union(b.Right, int(g.Right))
	out := map[string]tree.Assignment{}
	for _, sl := range left {
		for _, sr := range right {
			merged := append(append(tree.Assignment{}, sl...), sr...).Normalize()
			out[merged.Key()] = merged
		}
	}
	return out
}

// Union returns S of ∪-gate u of box b.
func (e *Evaluator) Union(b *Box, u int) map[string]tree.Assignment {
	if sets, ok := e.memo[b]; ok && sets[u] != nil {
		return sets[u]
	}
	if _, ok := e.memo[b]; !ok {
		e.memo[b] = make([]map[string]tree.Assignment, len(b.Unions))
	}
	out := map[string]tree.Assignment{}
	// Mark before recursing: the circuit is acyclic, but this keeps the
	// memo table consistent if the same gate is requested re-entrantly.
	e.memo[b][u] = out
	g := b.Unions[u]
	for _, v := range g.Vars {
		a := e.VarAssignment(b, int(v))
		out[a.Key()] = a
	}
	for _, t := range g.Times {
		for k, a := range e.Times(b, int(t)) {
			out[k] = a
		}
	}
	for _, l := range g.LeftUnions {
		for k, a := range e.Union(b.Left, int(l)) {
			out[k] = a
		}
	}
	for _, r := range g.RightUnions {
		for k, a := range e.Union(b.Right, int(r)) {
			out[k] = a
		}
	}
	return out
}

// Gamma returns S(γ(n, q)) for the box b and state q: the empty set for
// ⊥, the set containing only the empty assignment for ⊤, and the ∪-gate's
// captured set otherwise.
func (e *Evaluator) Gamma(b *Box, q int) map[string]tree.Assignment {
	switch b.GammaKind[q] {
	case GammaBottom:
		return map[string]tree.Assignment{}
	case GammaTop:
		empty := tree.Assignment{}
		return map[string]tree.Assignment{empty.Key(): empty}
	default:
		return e.Union(b, int(b.GammaIdx[q]))
	}
}
