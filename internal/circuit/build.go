package circuit

import (
	"fmt"
	"slices"

	"repro/internal/bitset"
	"repro/internal/tree"
	"repro/internal/tva"
)

// Builder constructs assignment circuits for a fixed homogenized binary
// TVA, one box per tree node, exactly as in the proof of Lemma 3.7
// (Appendix B): ⊤- and ⊥-gates are represented implicitly in the γ arrays
// and never wired into the circuit; a ×-gate whose left (right) input
// would be ⊤ degenerates to an alias wire to the other child's ∪-gate.
//
// The builder exposes the two per-node steps (LeafBox, InnerBox) so that
// the update machinery of Section 7 can rebuild exactly the boxes touched
// by a tree hollowing.
//
// The hot path is allocation-light by construction: the automaton's
// rules are flattened once into a shared, immutable Program (leaf-box
// templates plus dense per-label transition rules — see program.go), and
// all per-box working state lives in a reusable scratch arena, so
// LeafBox allocates only the box and its var gates and InnerBox only the
// box's own immutable arrays. Every box also carries a structural
// signature (Box.Sig) that the dynamic engine's signature-pruned repair
// compares.
//
// CONCURRENCY: a Builder is NOT safe for concurrent use — LeafBox and
// InnerBox share the scratch arena. The dynamic engine's parallel write
// path already gives every per-query pipeline its own Builder and
// confines it to one worker goroutine per publication, the same
// discipline as the pipeline's counting.Evaluator; keep any new caller
// inside that assumption or the engine's -race stress tests will trip.
// The Program behind the builder is immutable and safely shared across
// builders and goroutines.
type Builder struct {
	A    *tva.Binary
	prog *Program
	s    scratch
}

// NewBuilder validates that the automaton is homogenized (Lemma 2.1) and
// that its OneStates metadata matches the semantic 0/1-state
// classification, then returns a Builder for it. The flattened rule
// tables come from the process-wide program cache, so builders over
// content-equal automata (every pipeline of a QuerySet registering the
// same query) share one compiled Program.
func NewBuilder(a *tva.Binary) (*Builder, error) {
	if !a.Homogenized {
		return nil, fmt.Errorf("circuit: automaton is not homogenized; call Homogenize first")
	}
	zero, one := a.ZeroOneStates()
	for q := 0; q < a.NumStates; q++ {
		if zero.Has(q) && one.Has(q) {
			return nil, fmt.Errorf("circuit: state %d is both a 0-state and a 1-state", q)
		}
		if one.Has(q) != a.OneStates.Has(q) && (zero.Has(q) || one.Has(q)) {
			return nil, fmt.Errorf("circuit: OneStates metadata wrong for state %d", q)
		}
	}
	return &Builder{A: a, prog: programFor(a)}, nil
}

// scratch is the builder's reusable working state: dense epoch-stamped
// tables replacing the per-box maps of the old construction, and
// per-state accumulation buffers whose capacity persists across boxes.
// Resetting is O(1): bumping the epoch invalidates every stamp at once
// (the arrays are rewritten lazily as slots are touched).
type scratch struct {
	epoch uint32

	// pairEpoch/pairVal: dense (left ∪-gate, right ∪-gate) → ×-gate
	// index table, the replacement for the timesIdx map.
	pairEpoch []uint32
	pairVal   []int32

	// stateEpoch marks which 1-states have live accumulators this box.
	stateEpoch []uint32
	// luEpoch/ruEpoch deduplicate (state, child ∪-gate) alias wires.
	luEpoch []uint32
	ruEpoch []uint32

	// Per-state input accumulators, reused across boxes.
	accTimes [][]int32
	accLU    [][]int32
	accRU    [][]int32

	// timesBuf accumulates the box's ×-gates before the exact-size copy.
	timesBuf []TimesGate
	// degree counts ×-gate fan-outs when building the reverse wires.
	degree []int32
}

// begin starts a new box: bumps the epoch and sizes the dense tables for
// nq automaton states and (L, R) child ∪-gate counts.
func (s *scratch) begin(nq, l, r int) {
	s.epoch++
	if s.epoch == 0 {
		// uint32 wrap: stale stamps could collide with the fresh epoch.
		// Zero everything once per 2³² boxes and restart at 1. The FULL
		// capacity must be cleared — the slices are re-sliced per box, so
		// stale stamps survive in the [len:cap) tail otherwise.
		clear(s.pairEpoch[:cap(s.pairEpoch)])
		clear(s.stateEpoch[:cap(s.stateEpoch)])
		clear(s.luEpoch[:cap(s.luEpoch)])
		clear(s.ruEpoch[:cap(s.ruEpoch)])
		s.epoch = 1
	}
	s.pairEpoch = growU32(s.pairEpoch, l*r)
	s.pairVal = growI32(s.pairVal, l*r)
	s.stateEpoch = growU32(s.stateEpoch, nq)
	s.luEpoch = growU32(s.luEpoch, nq*l)
	s.ruEpoch = growU32(s.ruEpoch, nq*r)
	if len(s.accTimes) < nq {
		s.accTimes = append(s.accTimes, make([][]int32, nq-len(s.accTimes))...)
		s.accLU = append(s.accLU, make([][]int32, nq-len(s.accLU))...)
		s.accRU = append(s.accRU, make([][]int32, nq-len(s.accRU))...)
	}
	s.timesBuf = s.timesBuf[:0]
}

// growU32 returns a slice of length at least n; a freshly grown tail
// reads as unstamped (zero never equals a live epoch).
func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// LeafBox builds the box B_n for a leaf node n with the given label,
// following the leaf case of Lemma 3.7. The gate structure comes from
// the program's precompiled leaf template — shared, immutable slices —
// so the call allocates only the box and its node-stamped var gates.
func (bd *Builder) LeafBox(label tree.Label, node tree.NodeID) *Box {
	lt := bd.prog.leafFor(label)
	b := &Box{
		Node:      node,
		Label:     label,
		GammaKind: lt.gammaKind,
		GammaIdx:  lt.gammaIdx,
		Unions:    lt.unions,
		VarOut:    lt.varOut,
		Sig:       lt.sig,
	}
	if len(lt.varSets) > 0 {
		vars := make([]VarGate, len(lt.varSets))
		for i, set := range lt.varSets {
			vars[i] = VarGate{Set: set, Node: node}
		}
		b.Vars = vars
	}
	return b
}

// InnerBox builds the box B_n for an inner node with the given label,
// node ID and child boxes, following the inner case of Lemma 3.7: one
// (deduplicated) ×-gate per pair (q1, q2) of child states that some
// transition uses and whose γ gates are both ∪-gates; alias wires when
// one side is ⊤. The children are only read, never modified: a box built
// over already-published children leaves them shareable.
func (bd *Builder) InnerBox(label tree.Label, node tree.NodeID, left, right *Box) *Box {
	nq := bd.prog.numStates
	b := &Box{Label: label, Node: node, Left: left, Right: right,
		GammaKind: make([]GammaKind, nq), GammaIdx: make([]int32, nq)}
	for i := range b.GammaIdx {
		b.GammaIdx[i] = -1
	}
	if ip := bd.prog.inner[label]; ip != nil {
		bd.innerGates(b, ip, left, right)
	} else {
		b.WLeft = bitset.NewMatrix(len(left.Unions), 0)
		b.WRight = bitset.NewMatrix(len(right.Unions), 0)
	}
	b.Sig = computeSig(b)
	return b
}

// innerGates runs the label's transition program over the children's γ
// vectors, accumulating each 1-state's ∪-gate inputs in the scratch
// arena, then freezes the box's ×-gates, ∪-gates, wire matrices and
// reverse wires into exact-size immutable arrays.
func (bd *Builder) innerGates(b *Box, ip *innerProgram, left, right *Box) {
	s := &bd.s
	nq := bd.prog.numStates
	l, r := len(left.Unions), len(right.Unions)
	s.begin(nq, l, r)

	// 0-states: γ is ⊤ iff both children are ⊤ for some transition.
	for _, t := range ip.zero {
		if left.GammaKind[t.left] == GammaTop && right.GammaKind[t.right] == GammaTop {
			b.GammaKind[t.out] = GammaTop
		}
	}

	// 1-states: accumulate ×-gates and alias wires per output state.
	nInputs := 0
	for _, t := range ip.one {
		g1k, g2k := left.GammaKind[t.left], right.GammaKind[t.right]
		if g1k == GammaBottom || g2k == GammaBottom {
			continue
		}
		q := t.out
		if s.stateEpoch[q] != s.epoch {
			s.stateEpoch[q] = s.epoch
			s.accTimes[q] = s.accTimes[q][:0]
			s.accLU[q] = s.accLU[q][:0]
			s.accRU[q] = s.accRU[q][:0]
		}
		switch {
		case g1k == GammaTop && g2k == GammaTop:
			// Both children reach their states only under the empty
			// valuation, so q would be a 0-state; homogenization rules
			// this out.
			panic(fmt.Sprintf("circuit: 1-state %d produced by two ⊤ children (automaton not homogenized)", q))
		case g1k == GammaTop:
			gi := right.GammaIdx[t.right]
			if slot := int(q)*r + int(gi); s.ruEpoch[slot] != s.epoch {
				s.ruEpoch[slot] = s.epoch
				s.accRU[q] = append(s.accRU[q], gi)
				nInputs++
			}
		case g2k == GammaTop:
			gi := left.GammaIdx[t.left]
			if slot := int(q)*l + int(gi); s.luEpoch[slot] != s.epoch {
				s.luEpoch[slot] = s.epoch
				s.accLU[q] = append(s.accLU[q], gi)
				nInputs++
			}
		default:
			li, ri := left.GammaIdx[t.left], right.GammaIdx[t.right]
			slot := int(li)*r + int(ri)
			if s.pairEpoch[slot] != s.epoch {
				s.pairEpoch[slot] = s.epoch
				s.pairVal[slot] = int32(len(s.timesBuf))
				s.timesBuf = append(s.timesBuf, TimesGate{Left: li, Right: ri})
			}
			// No per-state dedup needed: GammaIdx is injective on ∪-states
			// within each child and the program is duplicate-free, so
			// distinct rules into q contribute distinct pairs.
			s.accTimes[q] = append(s.accTimes[q], s.pairVal[slot])
			nInputs++
		}
	}

	// Freeze: exact-size arrays, gates in the canonical order of the old
	// map-based construction (∪-gates by ascending state, input lists
	// sorted ascending, ×-gates in first-use order).
	nU := 0
	timesRefs := 0
	for q := 0; q < nq; q++ {
		if s.stateEpoch[q] == s.epoch {
			nU++
			timesRefs += len(s.accTimes[q])
		}
	}
	if len(s.timesBuf) > 0 {
		b.Times = make([]TimesGate, len(s.timesBuf))
		copy(b.Times, s.timesBuf)
	}
	if nU > 0 {
		b.Unions = make([]UnionGate, nU)
		// One backing array for every ∪-gate input list AND the ×-gate
		// reverse wires.
		flat := make([]int32, nInputs+timesRefs)
		off := 0
		take := func(src []int32) []int32 {
			if len(src) == 0 {
				return nil
			}
			dst := flat[off : off+len(src) : off+len(src)]
			copy(dst, src)
			off += len(src)
			return dst
		}
		ui := int32(0)
		for q := 0; q < nq; q++ {
			if s.stateEpoch[q] != s.epoch {
				continue
			}
			slices.Sort(s.accTimes[q])
			slices.Sort(s.accLU[q])
			slices.Sort(s.accRU[q])
			u := &b.Unions[ui]
			u.Times = take(s.accTimes[q])
			u.LeftUnions = take(s.accLU[q])
			u.RightUnions = take(s.accRU[q])
			b.GammaKind[q] = GammaUnion
			b.GammaIdx[q] = ui
			ui++
		}
		bd.buildTimesOut(b, flat[off:])
	}
	b.WLeft, b.WRight = bitset.NewMatrixPair(l, len(b.Unions), r, len(b.Unions))
	for ui := range b.Unions {
		u := &b.Unions[ui]
		b.WLeft.SetCol(u.LeftUnions, ui)
		b.WRight.SetCol(u.RightUnions, ui)
	}
}

// buildTimesOut fills the ×→∪ reverse wires into the provided backing
// space (the tail of the box's flat input array).
func (bd *Builder) buildTimesOut(b *Box, flat []int32) {
	if len(b.Times) == 0 {
		return
	}
	s := &bd.s
	s.degree = growI32(s.degree, len(b.Times))
	for i := range s.degree[:len(b.Times)] {
		s.degree[i] = 0
	}
	for ui := range b.Unions {
		for _, t := range b.Unions[ui].Times {
			s.degree[t]++
		}
	}
	b.TimesOut = make([][]int32, len(b.Times))
	off := 0
	for t := range b.TimesOut {
		d := int(s.degree[t])
		b.TimesOut[t] = flat[off : off : off+d]
		off += d
	}
	for ui := range b.Unions {
		for _, t := range b.Unions[ui].Times {
			b.TimesOut[t] = append(b.TimesOut[t], int32(ui))
		}
	}
}

// rebuildWires recomputes the WLeft/WRight matrices from the ∪-gate input
// lists. Only the direct ∪→∪ alias wires enter these relations: the
// ∪-reachability of Section 5 follows paths of ∪-gates exclusively, and
// ×-gates are endpoints (elements of ↓), not conduits. The builder fills
// wires inline; this method serves hand-assembled boxes in tests.
func (b *Box) rebuildWires() {
	if b.IsLeaf() {
		return
	}
	b.WLeft = bitset.NewMatrix(len(b.Left.Unions), len(b.Unions))
	b.WRight = bitset.NewMatrix(len(b.Right.Unions), len(b.Unions))
	for ui, u := range b.Unions {
		b.WLeft.SetCol(u.LeftUnions, ui)
		b.WRight.SetCol(u.RightUnions, ui)
	}
}

// rebuildReverse recomputes the VarOut/TimesOut reverse wire lists (the
// builder fills them inline; this method serves hand-assembled boxes in
// tests).
func (b *Box) rebuildReverse() {
	b.VarOut = make([][]int32, len(b.Vars))
	b.TimesOut = make([][]int32, len(b.Times))
	for ui, u := range b.Unions {
		for _, v := range u.Vars {
			b.VarOut[v] = append(b.VarOut[v], int32(ui))
		}
		for _, t := range u.Times {
			b.TimesOut[t] = append(b.TimesOut[t], int32(ui))
		}
	}
}

// Build constructs the assignment circuit of the automaton on the whole
// binary tree (Lemma 3.7): one box per node, bottom-up.
func (bd *Builder) Build(t *tree.Binary) *Circuit {
	var rec func(n *tree.BNode) *Box
	rec = func(n *tree.BNode) *Box {
		if n.IsLeaf() {
			b := bd.LeafBox(n.Label, n.ID)
			return b
		}
		l := rec(n.Left)
		r := rec(n.Right)
		return bd.InnerBox(n.Label, n.ID, l, r)
	}
	if t.Root == nil {
		return &Circuit{}
	}
	return &Circuit{Root: rec(t.Root)}
}

// RootAccepting returns the boxed set Γ of root ∪-gates γ(root, q) for
// final 1-states q, together with a flag telling whether the empty
// assignment is accepted (some final 0-state has γ(root, q) = ⊤). The
// satisfying assignments of the automaton are S(Γ), plus the empty
// assignment if the flag is set (see the proof of Theorem 8.1).
func (bd *Builder) RootAccepting(c *Circuit) (gamma bitset.Set, emptyAccepted bool) {
	root := c.Root
	gamma = bitset.NewSet(len(root.Unions))
	for _, q := range bd.A.Final {
		switch root.GammaKind[q] {
		case GammaTop:
			emptyAccepted = true
		case GammaUnion:
			gamma.Add(int(root.GammaIdx[q]))
		}
	}
	return gamma, emptyAccepted
}
