package circuit

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/tree"
	"repro/internal/tva"
)

// Builder constructs assignment circuits for a fixed homogenized binary
// TVA, one box per tree node, exactly as in the proof of Lemma 3.7
// (Appendix B): ⊤- and ⊥-gates are represented implicitly in the γ arrays
// and never wired into the circuit; a ×-gate whose left (right) input
// would be ⊤ degenerates to an alias wire to the other child's ∪-gate.
//
// The builder exposes the two per-node steps (LeafBox, InnerBox) so that
// the update machinery of Section 7 can rebuild exactly the boxes touched
// by a tree hollowing.
//
// CONCURRENCY: after NewBuilder returns, a Builder is read-only — the
// rule indexes are built once and LeafBox/InnerBox/RootAccepting only
// read them while allocating fresh boxes — but the dynamic engine does
// not rely on that: its parallel write path gives every per-query
// pipeline its own Builder and confines it to one worker goroutine per
// publication, the same discipline as the pipeline's counting.Evaluator
// (which IS stateful). Keep any future memoization inside that
// assumption or the engine's -race stress tests will trip.
type Builder struct {
	A       *tva.Binary
	initBy  map[tree.Label][]tva.InitRule
	deltaBy map[tree.Label][]tva.Triple
}

// NewBuilder validates that the automaton is homogenized (Lemma 2.1) and
// that its OneStates metadata matches the semantic 0/1-state
// classification, then returns a Builder for it.
func NewBuilder(a *tva.Binary) (*Builder, error) {
	if !a.Homogenized {
		return nil, fmt.Errorf("circuit: automaton is not homogenized; call Homogenize first")
	}
	zero, one := a.ZeroOneStates()
	for q := 0; q < a.NumStates; q++ {
		if zero.Has(q) && one.Has(q) {
			return nil, fmt.Errorf("circuit: state %d is both a 0-state and a 1-state", q)
		}
		if one.Has(q) != a.OneStates.Has(q) && (zero.Has(q) || one.Has(q)) {
			return nil, fmt.Errorf("circuit: OneStates metadata wrong for state %d", q)
		}
	}
	return &Builder{
		A:       a,
		initBy:  a.InitByLabel(),
		deltaBy: a.DeltaByLabel(),
	}, nil
}

// LeafBox builds the box B_n for a leaf node n with the given label,
// following the leaf case of Lemma 3.7.
func (bd *Builder) LeafBox(label tree.Label, node tree.NodeID) *Box {
	nq := bd.A.NumStates
	b := &Box{Node: node, Label: label, GammaKind: make([]GammaKind, nq), GammaIdx: make([]int32, nq)}
	for i := range b.GammaIdx {
		b.GammaIdx[i] = -1
	}
	varIdx := map[tree.VarSet]int32{}
	// Collect the nonempty-annotation rules per state.
	ruleSets := make([][]tree.VarSet, nq)
	emptyRule := make([]bool, nq)
	for _, r := range bd.initBy[label] {
		if r.Set.Empty() {
			emptyRule[r.State] = true
		} else {
			ruleSets[r.State] = append(ruleSets[r.State], r.Set)
		}
	}
	for q := 0; q < nq; q++ {
		if !bd.A.OneStates.Has(q) {
			// 0-state: ⊤ iff the empty annotation reaches q here.
			if emptyRule[q] {
				b.GammaKind[q] = GammaTop
			} else {
				b.GammaKind[q] = GammaBottom
			}
			continue
		}
		sets := ruleSets[q]
		if len(sets) == 0 {
			b.GammaKind[q] = GammaBottom
			continue
		}
		u := UnionGate{}
		seen := map[tree.VarSet]bool{}
		for _, y := range sets {
			if seen[y] {
				continue
			}
			seen[y] = true
			vi, ok := varIdx[y]
			if !ok {
				vi = int32(len(b.Vars))
				varIdx[y] = vi
				b.Vars = append(b.Vars, VarGate{Set: y, Node: node})
			}
			u.Vars = append(u.Vars, vi)
		}
		sort.Slice(u.Vars, func(i, j int) bool { return u.Vars[i] < u.Vars[j] })
		b.GammaKind[q] = GammaUnion
		b.GammaIdx[q] = int32(len(b.Unions))
		b.Unions = append(b.Unions, u)
	}
	b.rebuildReverse()
	return b
}

// InnerBox builds the box B_n for an inner node with the given label,
// node ID and child boxes, following the inner case of Lemma 3.7: one
// (deduplicated) ×-gate per pair (q1, q2) of child states that some
// transition uses and whose γ gates are both ∪-gates; alias wires when
// one side is ⊤. The children are only read, never modified: a box built
// over already-published children leaves them shareable.
func (bd *Builder) InnerBox(label tree.Label, node tree.NodeID, left, right *Box) *Box {
	nq := bd.A.NumStates
	b := &Box{Label: label, Node: node, Left: left, Right: right, GammaKind: make([]GammaKind, nq), GammaIdx: make([]int32, nq)}
	for i := range b.GammaIdx {
		b.GammaIdx[i] = -1
	}
	timesIdx := map[[2]int32]int32{}
	type unionAcc struct {
		times, lu, ru map[int32]bool
	}
	accs := make([]*unionAcc, nq)
	for _, t := range bd.deltaBy[label] {
		q := int(t.Out)
		g1k, g2k := left.GammaKind[t.Left], right.GammaKind[t.Right]
		if g1k == GammaBottom || g2k == GammaBottom {
			continue
		}
		if !bd.A.OneStates.Has(q) {
			// 0-state: ⊤ iff both children are ⊤ for some transition.
			if g1k == GammaTop && g2k == GammaTop {
				b.GammaKind[q] = GammaTop
			}
			continue
		}
		acc := accs[q]
		if acc == nil {
			acc = &unionAcc{times: map[int32]bool{}, lu: map[int32]bool{}, ru: map[int32]bool{}}
			accs[q] = acc
		}
		switch {
		case g1k == GammaTop && g2k == GammaTop:
			// Both children reach their states only under the empty
			// valuation, so q would be a 0-state; homogenization rules
			// this out.
			panic(fmt.Sprintf("circuit: 1-state %d produced by two ⊤ children (automaton not homogenized)", q))
		case g1k == GammaTop:
			acc.ru[right.GammaIdx[t.Right]] = true
		case g2k == GammaTop:
			acc.lu[left.GammaIdx[t.Left]] = true
		default:
			pair := [2]int32{left.GammaIdx[t.Left], right.GammaIdx[t.Right]}
			ti, ok := timesIdx[pair]
			if !ok {
				ti = int32(len(b.Times))
				timesIdx[pair] = ti
				b.Times = append(b.Times, TimesGate{Left: pair[0], Right: pair[1]})
			}
			acc.times[ti] = true
		}
	}
	for q := 0; q < nq; q++ {
		acc := accs[q]
		if acc == nil {
			continue // stays GammaBottom or was set to GammaTop above
		}
		u := UnionGate{
			Times:       sortedKeys(acc.times),
			LeftUnions:  sortedKeys(acc.lu),
			RightUnions: sortedKeys(acc.ru),
		}
		b.GammaKind[q] = GammaUnion
		b.GammaIdx[q] = int32(len(b.Unions))
		b.Unions = append(b.Unions, u)
	}
	b.rebuildWires()
	b.rebuildReverse()
	return b
}

// rebuildWires recomputes the WLeft/WRight matrices from the ∪-gate input
// lists. Only the direct ∪→∪ alias wires enter these relations: the
// ∪-reachability of Section 5 follows paths of ∪-gates exclusively, and
// ×-gates are endpoints (elements of ↓), not conduits.
func (b *Box) rebuildWires() {
	if b.IsLeaf() {
		return
	}
	b.WLeft = bitset.NewMatrix(len(b.Left.Unions), len(b.Unions))
	b.WRight = bitset.NewMatrix(len(b.Right.Unions), len(b.Unions))
	for ui, u := range b.Unions {
		for _, l := range u.LeftUnions {
			b.WLeft.Set(int(l), ui)
		}
		for _, r := range u.RightUnions {
			b.WRight.Set(int(r), ui)
		}
	}
}

// rebuildReverse recomputes the VarOut/TimesOut reverse wire lists.
func (b *Box) rebuildReverse() {
	b.VarOut = make([][]int32, len(b.Vars))
	b.TimesOut = make([][]int32, len(b.Times))
	for ui, u := range b.Unions {
		for _, v := range u.Vars {
			b.VarOut[v] = append(b.VarOut[v], int32(ui))
		}
		for _, t := range u.Times {
			b.TimesOut[t] = append(b.TimesOut[t], int32(ui))
		}
	}
}

func sortedKeys(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Build constructs the assignment circuit of the automaton on the whole
// binary tree (Lemma 3.7): one box per node, bottom-up.
func (bd *Builder) Build(t *tree.Binary) *Circuit {
	var rec func(n *tree.BNode) *Box
	rec = func(n *tree.BNode) *Box {
		if n.IsLeaf() {
			b := bd.LeafBox(n.Label, n.ID)
			return b
		}
		l := rec(n.Left)
		r := rec(n.Right)
		return bd.InnerBox(n.Label, n.ID, l, r)
	}
	if t.Root == nil {
		return &Circuit{}
	}
	return &Circuit{Root: rec(t.Root)}
}

// RootAccepting returns the boxed set Γ of root ∪-gates γ(root, q) for
// final 1-states q, together with a flag telling whether the empty
// assignment is accepted (some final 0-state has γ(root, q) = ⊤). The
// satisfying assignments of the automaton are S(Γ), plus the empty
// assignment if the flag is set (see the proof of Theorem 8.1).
func (bd *Builder) RootAccepting(c *Circuit) (gamma bitset.Set, emptyAccepted bool) {
	root := c.Root
	gamma = bitset.NewSet(len(root.Unions))
	for _, q := range bd.A.Final {
		switch root.GammaKind[q] {
		case GammaTop:
			emptyAccepted = true
		case GammaUnion:
			gamma.Add(int(root.GammaIdx[q]))
		}
	}
	return gamma, emptyAccepted
}
