package tva

import (
	"sort"

	"repro/internal/tree"
)

// Union returns a (nondeterministic) binary TVA accepting a tree under a
// valuation iff a or b does. Both automata must share the same alphabet
// and variable universe.
func Union(a, b *Binary) *Binary {
	out := &Binary{
		NumStates: a.NumStates + b.NumStates,
		Alphabet:  mergeAlphabets(a.Alphabet, b.Alphabet),
		Vars:      a.Vars | b.Vars,
	}
	out.Init = append(out.Init, a.Init...)
	for _, r := range b.Init {
		out.Init = append(out.Init, InitRule{r.Label, r.Set, r.State + State(a.NumStates)})
	}
	out.Delta = append(out.Delta, a.Delta...)
	for _, t := range b.Delta {
		out.Delta = append(out.Delta, Triple{t.Label, t.Left + State(a.NumStates), t.Right + State(a.NumStates), t.Out + State(a.NumStates)})
	}
	out.Final = append(out.Final, a.Final...)
	for _, q := range b.Final {
		out.Final = append(out.Final, q+State(a.NumStates))
	}
	return out
}

// Intersect returns the product automaton accepting exactly the trees and
// valuations accepted by both a and b.
func Intersect(a, b *Binary) *Binary {
	out := &Binary{
		NumStates: a.NumStates * b.NumStates,
		Alphabet:  mergeAlphabets(a.Alphabet, b.Alphabet),
		Vars:      a.Vars | b.Vars,
	}
	enc := func(p, q State) State { return p*State(b.NumStates) + q }
	bInit := b.InitByLabel()
	for _, ra := range a.Init {
		for _, rb := range bInit[ra.Label] {
			if ra.Set == rb.Set {
				out.Init = append(out.Init, InitRule{ra.Label, ra.Set, enc(ra.State, rb.State)})
			}
		}
	}
	bDelta := b.DeltaByLabel()
	for _, ta := range a.Delta {
		for _, tb := range bDelta[ta.Label] {
			out.Delta = append(out.Delta, Triple{
				ta.Label,
				enc(ta.Left, tb.Left),
				enc(ta.Right, tb.Right),
				enc(ta.Out, tb.Out),
			})
		}
	}
	for _, fa := range a.Final {
		for _, fb := range b.Final {
			out.Final = append(out.Final, enc(fa, fb))
		}
	}
	return out.Trim()
}

// Determinize performs the bottom-up subset construction, producing a
// deterministic binary TVA equivalent to a: for every (label, annotation)
// pair and every pair of child states there is at most one successor
// state. Only reachable subsets are materialized, but the construction is
// still exponential in |Q| in the worst case — this is exactly the cost
// the paper's combined-complexity result avoids, and the determinize-first
// baseline of experiment E5 measures.
func Determinize(a *Binary) *Binary {
	type key = string
	initBy := a.InitByLabel()
	deltaBy := a.DeltaByLabel()

	encode := func(qs []State) key {
		b := make([]byte, 0, len(qs)*2)
		for _, q := range qs {
			b = append(b, byte(q), byte(q>>8))
		}
		return key(b)
	}

	index := map[key]State{}
	var subsets [][]State
	intern := func(qs []State) State {
		k := encode(qs)
		if s, ok := index[k]; ok {
			return s
		}
		s := State(len(subsets))
		index[k] = s
		subsets = append(subsets, qs)
		return s
	}

	out := &Binary{Alphabet: append([]tree.Label(nil), a.Alphabet...), Vars: a.Vars}

	// Seed with all leaf subsets: one per (label, annotation) with a
	// nonempty state set.
	annotations := []tree.VarSet{}
	tree.SubsetsOf(a.Vars, func(s tree.VarSet) { annotations = append(annotations, s) })
	for _, l := range a.Alphabet {
		for _, ann := range annotations {
			var qs []State
			seen := map[State]bool{}
			for _, r := range initBy[l] {
				if r.Set == ann && !seen[r.State] {
					seen[r.State] = true
					qs = append(qs, r.State)
				}
			}
			if len(qs) == 0 {
				continue
			}
			sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
			out.Init = append(out.Init, InitRule{l, ann, intern(qs)})
		}
	}

	// Close under transitions: for every label and every known pair of
	// subset states, compute the successor subset.
	type pairKey struct {
		l      tree.Label
		s1, s2 State
	}
	done := map[pairKey]bool{}
	for frontier := 0; frontier < len(subsets); frontier++ {
		for _, l := range a.Alphabet {
			triples := deltaBy[l]
			if len(triples) == 0 {
				continue
			}
			for s1 := 0; s1 < len(subsets); s1++ {
				for _, s2pick := range []int{frontier} {
					for _, pair := range [][2]int{{s1, s2pick}, {s2pick, s1}} {
						pk := pairKey{l, State(pair[0]), State(pair[1])}
						if done[pk] {
							continue
						}
						done[pk] = true
						has1 := map[State]bool{}
						for _, q := range subsets[pair[0]] {
							has1[q] = true
						}
						has2 := map[State]bool{}
						for _, q := range subsets[pair[1]] {
							has2[q] = true
						}
						resSeen := map[State]bool{}
						var res []State
						for _, t := range triples {
							if has1[t.Left] && has2[t.Right] && !resSeen[t.Out] {
								resSeen[t.Out] = true
								res = append(res, t.Out)
							}
						}
						if len(res) == 0 {
							continue
						}
						sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
						s := intern(res)
						out.Delta = append(out.Delta, Triple{l, pk.s1, pk.s2, s})
					}
				}
			}
		}
	}

	out.NumStates = len(subsets)
	finals := map[State]bool{}
	for _, q := range a.Final {
		finals[q] = true
	}
	for i, qs := range subsets {
		for _, q := range qs {
			if finals[q] {
				out.Final = append(out.Final, State(i))
				break
			}
		}
	}
	return out
}

// Complete adds a non-accepting sink state so that every (label,
// annotation) pair has an initial rule and every (label, state pair) has a
// transition. Required before complementing a deterministic automaton.
func Complete(a *Binary) *Binary {
	out := &Binary{
		NumStates: a.NumStates + 1,
		Alphabet:  append([]tree.Label(nil), a.Alphabet...),
		Vars:      a.Vars,
		Init:      append([]InitRule(nil), a.Init...),
		Delta:     append([]Triple(nil), a.Delta...),
		Final:     append([]State(nil), a.Final...),
	}
	sink := State(a.NumStates)
	initSeen := map[InitRule]bool{}
	for _, r := range a.Init {
		initSeen[InitRule{r.Label, r.Set, 0}] = true
	}
	for _, l := range a.Alphabet {
		tree.SubsetsOf(a.Vars, func(s tree.VarSet) {
			if !initSeen[InitRule{l, s, 0}] {
				out.Init = append(out.Init, InitRule{l, s, sink})
			}
		})
	}
	type pk struct {
		l      tree.Label
		q1, q2 State
	}
	deltaSeen := map[pk]bool{}
	for _, t := range a.Delta {
		deltaSeen[pk{t.Label, t.Left, t.Right}] = true
	}
	for _, l := range a.Alphabet {
		for q1 := State(0); q1 <= sink; q1++ {
			for q2 := State(0); q2 <= sink; q2++ {
				if !deltaSeen[pk{l, q1, q2}] {
					out.Delta = append(out.Delta, Triple{l, q1, q2, sink})
				}
			}
		}
	}
	return out
}

// IsDeterministic reports whether the automaton has at most one initial
// state per (label, annotation) and one successor per (label, q1, q2).
func (a *Binary) IsDeterministic() bool {
	type ik struct {
		l tree.Label
		s tree.VarSet
	}
	seenI := map[ik]State{}
	for _, r := range a.Init {
		if q, ok := seenI[ik{r.Label, r.Set}]; ok && q != r.State {
			return false
		}
		seenI[ik{r.Label, r.Set}] = r.State
	}
	type dk struct {
		l      tree.Label
		q1, q2 State
	}
	seenD := map[dk]State{}
	for _, t := range a.Delta {
		if q, ok := seenD[dk{t.Label, t.Left, t.Right}]; ok && q != t.Out {
			return false
		}
		seenD[dk{t.Label, t.Left, t.Right}] = t.Out
	}
	return true
}

// Complement returns an automaton accepting exactly the (tree, valuation)
// pairs a rejects, relative to a's alphabet and variable universe. The
// input is determinized and completed first, so this is exponential in
// general.
func Complement(a *Binary) *Binary {
	d := Complete(Determinize(a))
	finals := map[State]bool{}
	for _, q := range d.Final {
		finals[q] = true
	}
	var flipped []State
	for q := State(0); int(q) < d.NumStates; q++ {
		if !finals[q] {
			flipped = append(flipped, q)
		}
	}
	d.Final = flipped
	return d.Trim()
}

func mergeAlphabets(a, b []tree.Label) []tree.Label {
	seen := map[tree.Label]bool{}
	var out []tree.Label
	for _, l := range a {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	for _, l := range b {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}
