package tva

import (
	"repro/internal/bitset"
	"repro/internal/tree"
)

// ZeroOneStates computes, by a bottom-up fixpoint, which states are
// 0-states (reachable at the root of some tree under the empty valuation)
// and which are 1-states (reachable under some valuation with at least one
// nonempty annotation). A state can be both, or neither if it is
// unreachable (Section 2).
func (a *Binary) ZeroOneStates() (zero, one bitset.Set) {
	zero = bitset.NewSet(a.NumStates)
	one = bitset.NewSet(a.NumStates)
	for _, r := range a.Init {
		if r.Set.Empty() {
			zero.Add(int(r.State))
		} else {
			one.Add(int(r.State))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range a.Delta {
			l, r, o := int(t.Left), int(t.Right), int(t.Out)
			if zero.Has(l) && zero.Has(r) && !zero.Has(o) {
				zero.Add(o)
				changed = true
			}
			reachL := zero.Has(l) || one.Has(l)
			reachR := zero.Has(r) || one.Has(r)
			if ((one.Has(l) && reachR) || (reachL && one.Has(r))) && !one.Has(o) {
				one.Add(o)
				changed = true
			}
		}
	}
	return zero, one
}

// IsHomogenized reports whether no state is both a 0-state and a 1-state.
func (a *Binary) IsHomogenized() bool {
	zero, one := a.ZeroOneStates()
	for q := 0; q < a.NumStates; q++ {
		if zero.Has(q) && one.Has(q) {
			return false
		}
	}
	return true
}

// Homogenize implements Lemma 2.1: it returns an equivalent automaton in
// which every live state is either a 0-state or a 1-state and no state is
// both. The construction is the product of A with a two-state automaton
// that remembers whether a nonempty annotation has been seen; the result
// is trimmed, which also drops states that are neither 0- nor 1-states.
// The returned automaton has Homogenized set and OneStates filled in.
func (a *Binary) Homogenize() *Binary {
	// State (q, i) is encoded as 2q+i, with i = 1 meaning "some nonempty
	// annotation was read below".
	enc := func(q State, i int) State { return 2*q + State(i) }
	h := &Binary{
		NumStates:   2 * a.NumStates,
		Alphabet:    append([]tree.Label(nil), a.Alphabet...),
		Vars:        a.Vars,
		Homogenized: true,
		OneStates:   bitset.NewSet(2 * a.NumStates),
	}
	for q := 0; q < a.NumStates; q++ {
		h.OneStates.Add(int(enc(State(q), 1)))
	}
	for _, r := range a.Init {
		if r.Set.Empty() {
			h.Init = append(h.Init, InitRule{r.Label, r.Set, enc(r.State, 0)})
		} else {
			h.Init = append(h.Init, InitRule{r.Label, r.Set, enc(r.State, 1)})
		}
	}
	for _, t := range a.Delta {
		for i1 := 0; i1 <= 1; i1++ {
			for i2 := 0; i2 <= 1; i2++ {
				h.Delta = append(h.Delta, Triple{t.Label, enc(t.Left, i1), enc(t.Right, i2), enc(t.Out, i1|i2)})
			}
		}
	}
	for _, q := range a.Final {
		h.Final = append(h.Final, enc(q, 0), enc(q, 1))
	}
	return h.Trim()
}
