package tva

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

var ambAlpha = []tree.Label{"a", "b"}

// TestUnambiguousDeterministic: a bottom-up deterministic automaton is
// unambiguous by construction, before and after homogenization.
func TestUnambiguousDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for seed := 0; seed < 20; seed++ {
		a := RandomBinary(rng, 3, ambAlpha, tree.VarSet(1), 0.3)
		d := Determinize(a).Trim()
		if !d.Unambiguous() {
			t.Fatalf("seed %d: determinized automaton reported ambiguous", seed)
		}
		if !d.Homogenize().Unambiguous() {
			t.Fatalf("seed %d: homogenized determinized automaton reported ambiguous", seed)
		}
	}
}

// TestAmbiguousDuplicatedRun: duplicating an accepting state makes two
// runs accept every input that one did.
func TestAmbiguousDuplicatedRun(t *testing.T) {
	// States 0 and 1 are interchangeable accepting copies reached from
	// the same annotated leaf.
	a := &Binary{
		NumStates: 2,
		Alphabet:  ambAlpha,
		Vars:      tree.VarSet(1),
		Init: []InitRule{
			{Label: "a", Set: tree.VarSet(1), State: 0},
			{Label: "a", Set: tree.VarSet(1), State: 1},
		},
		Final: []State{0, 1},
	}
	if a.Unambiguous() {
		t.Fatal("duplicated accepting run reported unambiguous")
	}
	// Homogenization preserves the ambiguity (both copies are 1-states).
	if a.Homogenize().Unambiguous() {
		t.Fatal("homogenized duplicate reported unambiguous")
	}
}

// TestUnambiguousIgnoresZeroStateAmbiguity: after homogenization only
// 1-state ambiguity matters — several runs may accept the empty
// valuation without affecting nonempty derivation counts.
func TestUnambiguousIgnoresZeroStateAmbiguity(t *testing.T) {
	// Two distinct accepting runs exist for the EMPTY annotation only;
	// the single nonempty-annotation run is unique.
	a := &Binary{
		NumStates: 3,
		Alphabet:  ambAlpha,
		Vars:      tree.VarSet(1),
		Init: []InitRule{
			{Label: "a", Set: 0, State: 0},
			{Label: "a", Set: 0, State: 1},
			{Label: "a", Set: tree.VarSet(1), State: 2},
		},
		Final: []State{0, 1, 2},
	}
	if a.Unambiguous() {
		t.Fatal("raw automaton is ambiguous (two empty-valuation runs)")
	}
	h := a.Homogenize()
	if !h.Unambiguous() {
		t.Fatal("homogenized check must ignore 0-state ambiguity")
	}
}

// TestAmbiguousNondeterministicGuess: the classic ambiguous shape — a
// final state reachable by two different interior guesses for the same
// annotated tree.
func TestAmbiguousNondeterministicGuess(t *testing.T) {
	// Leaf states 0 (annotated) and 1 (plain); inner node may route the
	// pair through two different intermediate states 2 or 3, both
	// leading to final 4 one level up.
	a := &Binary{
		NumStates: 5,
		Alphabet:  ambAlpha,
		Vars:      tree.VarSet(1),
		Init: []InitRule{
			{Label: "a", Set: tree.VarSet(1), State: 0},
			{Label: "a", Set: 0, State: 1},
		},
		Delta: []Triple{
			{Label: "b", Left: 0, Right: 1, Out: 2},
			{Label: "b", Left: 0, Right: 1, Out: 3},
			{Label: "b", Left: 2, Right: 1, Out: 4},
			{Label: "b", Left: 3, Right: 1, Out: 4},
		},
		Final: []State{4},
	}
	if a.Unambiguous() {
		t.Fatal("two-guess automaton reported unambiguous")
	}
	if a.Homogenize().Unambiguous() {
		t.Fatal("homogenized two-guess automaton reported unambiguous")
	}
}
