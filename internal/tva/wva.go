package tva

import (
	"fmt"

	"repro/internal/tree"
)

// WTrans is a transition (q, a, Y, q′) of a word variable automaton: in
// state q, reading a position labeled a and annotated with exactly the
// variable set Y, the automaton may move to q′.
type WTrans struct {
	From  State
	Label tree.Label
	Set   tree.VarSet
	To    State
}

// WVA is a word variable automaton (Section 8, after the extended
// sequential variable automata of document spanners): a query on words
// whose satisfying assignments place variables on word positions.
type WVA struct {
	NumStates int
	Alphabet  []tree.Label
	Vars      tree.VarSet
	Initial   []State
	Trans     []WTrans
	Final     []State
}

// Size returns |A| = |Q| + |δ|.
func (a *WVA) Size() int { return a.NumStates + len(a.Trans) }

// Validate checks basic well-formedness.
func (a *WVA) Validate() error {
	labels := map[tree.Label]bool{}
	for _, l := range a.Alphabet {
		labels[l] = true
	}
	ok := func(q State) bool { return q >= 0 && int(q) < a.NumStates }
	for _, q := range a.Initial {
		if !ok(q) {
			return fmt.Errorf("tva: wva initial state %d out of range", q)
		}
	}
	for _, q := range a.Final {
		if !ok(q) {
			return fmt.Errorf("tva: wva final state %d out of range", q)
		}
	}
	for _, t := range a.Trans {
		if !ok(t.From) || !ok(t.To) {
			return fmt.Errorf("tva: wva transition %v state out of range", t)
		}
		if !labels[t.Label] {
			return fmt.Errorf("tva: wva transition label %q not in alphabet", t.Label)
		}
		if t.Set&^a.Vars != 0 {
			return fmt.Errorf("tva: wva transition set %v outside universe", t.Set)
		}
	}
	return nil
}

// Accepts reports whether the WVA accepts the word (a sequence of labels)
// under the valuation ν, where position i (0-based) is addressed as
// NodeID ids[i].
func (a *WVA) Accepts(word []tree.Label, ids []tree.NodeID, nu tree.Valuation) bool {
	cur := map[State]bool{}
	for _, q := range a.Initial {
		cur[q] = true
	}
	for i, l := range word {
		ann := nu[ids[i]]
		next := map[State]bool{}
		for _, t := range a.Trans {
			if t.Label == l && t.Set == ann && cur[t.From] {
				next[t.To] = true
			}
		}
		cur = next
	}
	for _, q := range a.Final {
		if cur[q] {
			return true
		}
	}
	return false
}

// SatisfyingAssignments enumerates by brute force the satisfying
// assignments of the WVA on the word (ground truth for tests).
func (a *WVA) SatisfyingAssignments(word []tree.Label, ids []tree.NodeID, maxLen int) (map[string]tree.Assignment, error) {
	if len(word) > maxLen {
		return nil, fmt.Errorf("tva: brute force on word of length %d exceeds cap %d", len(word), maxLen)
	}
	subsets := []tree.VarSet{}
	tree.SubsetsOf(a.Vars, func(s tree.VarSet) { subsets = append(subsets, s) })
	results := map[string]tree.Assignment{}
	nu := tree.Valuation{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(word) {
			if a.Accepts(word, ids, nu) {
				asg := nu.Assignment()
				results[asg.Key()] = asg
			}
			return
		}
		for _, s := range subsets {
			if s == 0 {
				delete(nu, ids[i])
			} else {
				nu[ids[i]] = s
			}
			rec(i + 1)
		}
		delete(nu, ids[i])
	}
	rec(0)
	return results, nil
}
