package tva

import (
	"math/rand"

	"repro/internal/tree"
)

// RandomBinary generates a random binary TVA for fuzz tests: random
// initial rules, transitions and final states over the given alphabet and
// variable universe. Density tunes how many rules are drawn.
func RandomBinary(rng *rand.Rand, numStates int, alphabet []tree.Label, vars tree.VarSet, density float64) *Binary {
	a := &Binary{
		NumStates: numStates,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      vars,
	}
	subsets := []tree.VarSet{}
	tree.SubsetsOf(vars, func(s tree.VarSet) { subsets = append(subsets, s) })
	for _, l := range alphabet {
		for _, s := range subsets {
			for q := 0; q < numStates; q++ {
				if rng.Float64() < density {
					a.Init = append(a.Init, InitRule{l, s, State(q)})
				}
			}
		}
	}
	nTrans := int(density * float64(numStates*numStates*numStates*len(alphabet)))
	if nTrans < 1 {
		nTrans = 1
	}
	for i := 0; i < nTrans; i++ {
		a.Delta = append(a.Delta, Triple{
			alphabet[rng.Intn(len(alphabet))],
			State(rng.Intn(numStates)),
			State(rng.Intn(numStates)),
			State(rng.Intn(numStates)),
		})
	}
	for q := 0; q < numStates; q++ {
		if rng.Float64() < 0.5 {
			a.Final = append(a.Final, State(q))
		}
	}
	if len(a.Final) == 0 {
		a.Final = append(a.Final, State(rng.Intn(numStates)))
	}
	return a
}

// RandomUnranked generates a random stepwise TVA for fuzz tests.
func RandomUnranked(rng *rand.Rand, numStates int, alphabet []tree.Label, vars tree.VarSet, density float64) *Unranked {
	a := &Unranked{
		NumStates: numStates,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      vars,
	}
	subsets := []tree.VarSet{}
	tree.SubsetsOf(vars, func(s tree.VarSet) { subsets = append(subsets, s) })
	for _, l := range alphabet {
		for _, s := range subsets {
			for q := 0; q < numStates; q++ {
				if rng.Float64() < density {
					a.Init = append(a.Init, InitRule{l, s, State(q)})
				}
			}
		}
	}
	nTrans := int(density * float64(numStates*numStates*numStates))
	if nTrans < 1 {
		nTrans = 1
	}
	for i := 0; i < nTrans; i++ {
		a.Delta = append(a.Delta, StepTriple{
			State(rng.Intn(numStates)),
			State(rng.Intn(numStates)),
			State(rng.Intn(numStates)),
		})
	}
	for q := 0; q < numStates; q++ {
		if rng.Float64() < 0.5 {
			a.Final = append(a.Final, State(q))
		}
	}
	if len(a.Final) == 0 {
		a.Final = append(a.Final, State(rng.Intn(numStates)))
	}
	return a
}

// RandomBinaryTree generates a random full binary tree with the given
// number of leaves over the alphabet.
func RandomBinaryTree(rng *rand.Rand, leaves int, alphabet []tree.Label) *tree.Binary {
	b := tree.NewBinary()
	pick := func() tree.Label { return alphabet[rng.Intn(len(alphabet))] }
	var build func(nLeaves int) *tree.BNode
	build = func(nLeaves int) *tree.BNode {
		if nLeaves == 1 {
			return b.Leaf(pick())
		}
		l := 1 + rng.Intn(nLeaves-1)
		return b.Inner(pick(), build(l), build(nLeaves-l))
	}
	b.SetRoot(build(leaves))
	return b
}

// RandomUnrankedTree generates a random unranked tree with n nodes over
// the alphabet, attaching each node under a uniformly random earlier node.
func RandomUnrankedTree(rng *rand.Rand, n int, alphabet []tree.Label) *tree.Unranked {
	pick := func() tree.Label { return alphabet[rng.Intn(len(alphabet))] }
	t := tree.NewUnranked(pick())
	ids := []tree.NodeID{t.Root.ID}
	for i := 1; i < n; i++ {
		parent := ids[rng.Intn(len(ids))]
		nn, err := t.InsertFirstChild(parent, pick())
		if err != nil {
			panic(err)
		}
		ids = append(ids, nn.ID)
	}
	return t
}
