package tva

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

// sameAssignments checks two oracle outputs for equality.
func sameAssignments(t *testing.T, label string, want, got map[string]tree.Assignment) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: |want|=%d |got|=%d", label, len(want), len(got))
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Fatalf("%s: missing %q", label, k)
		}
	}
}

func TestUnionIntersectBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alpha := []tree.Label{"a", "b"}
	vars := tree.NewVarSet(0)
	for trial := 0; trial < 30; trial++ {
		a := RandomBinary(rng, 1+rng.Intn(3), alpha, vars, 0.4)
		b := RandomBinary(rng, 1+rng.Intn(3), alpha, vars, 0.4)
		u := Union(a, b)
		x := Intersect(a, b)
		bt := RandomBinaryTree(rng, 1+rng.Intn(4), alpha)
		wa, _ := a.SatisfyingAssignments(bt, 6)
		wb, _ := b.SatisfyingAssignments(bt, 6)
		wu, _ := u.SatisfyingAssignments(bt, 6)
		wx, _ := x.SatisfyingAssignments(bt, 6)
		// Union = wa ∪ wb.
		wantU := map[string]tree.Assignment{}
		for k, v := range wa {
			wantU[k] = v
		}
		for k, v := range wb {
			wantU[k] = v
		}
		sameAssignments(t, "union", wantU, wu)
		// Intersection = wa ∩ wb.
		wantX := map[string]tree.Assignment{}
		for k, v := range wa {
			if _, ok := wb[k]; ok {
				wantX[k] = v
			}
		}
		sameAssignments(t, "intersect", wantX, wx)
	}
}

func TestDeterminizeEquivalentAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	alpha := []tree.Label{"a", "b"}
	vars := tree.NewVarSet(0)
	for trial := 0; trial < 30; trial++ {
		a := RandomBinary(rng, 1+rng.Intn(4), alpha, vars, 0.4)
		d := Determinize(a)
		if !d.IsDeterministic() {
			t.Fatalf("trial %d: Determinize result not deterministic", trial)
		}
		bt := RandomBinaryTree(rng, 1+rng.Intn(4), alpha)
		want, _ := a.SatisfyingAssignments(bt, 6)
		got, _ := d.SatisfyingAssignments(bt, 6)
		sameAssignments(t, "determinize", want, got)
	}
}

func TestComplementBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alpha := []tree.Label{"a", "b"}
	vars := tree.NewVarSet(0)
	for trial := 0; trial < 20; trial++ {
		a := RandomBinary(rng, 1+rng.Intn(3), alpha, vars, 0.4)
		c := Complement(a)
		bt := RandomBinaryTree(rng, 1+rng.Intn(3), alpha)
		// Complement must accept exactly the valuations a rejects.
		leaves := bt.Leaves()
		subsets := []tree.VarSet{}
		tree.SubsetsOf(vars, func(s tree.VarSet) { subsets = append(subsets, s) })
		var rec func(i int, nu tree.Valuation)
		rec = func(i int, nu tree.Valuation) {
			if i == len(leaves) {
				if a.Accepts(bt, nu) == c.Accepts(bt, nu) {
					t.Fatalf("trial %d: complement agrees with original on %v", trial, nu)
				}
				return
			}
			for _, s := range subsets {
				if s == 0 {
					delete(nu, leaves[i].ID)
				} else {
					nu[leaves[i].ID] = s
				}
				rec(i+1, nu)
			}
			delete(nu, leaves[i].ID)
		}
		rec(0, tree.Valuation{})
	}
}

func TestCompleteIsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := RandomBinary(rng, 3, []tree.Label{"a", "b"}, tree.NewVarSet(0), 0.2)
	d := Complete(Determinize(a))
	// Every (label, annotation) has an init rule.
	initSeen := map[InitRule]bool{}
	for _, r := range d.Init {
		initSeen[InitRule{r.Label, r.Set, 0}] = true
	}
	for _, l := range d.Alphabet {
		tree.SubsetsOf(d.Vars, func(s tree.VarSet) {
			if !initSeen[InitRule{l, s, 0}] {
				t.Fatalf("missing init rule for (%s, %v)", l, s)
			}
		})
	}
	// Every (label, q1, q2) has a transition.
	type pk struct {
		l      tree.Label
		q1, q2 State
	}
	deltaSeen := map[pk]bool{}
	for _, tr := range d.Delta {
		deltaSeen[pk{tr.Label, tr.Left, tr.Right}] = true
	}
	for _, l := range d.Alphabet {
		for q1 := State(0); int(q1) < d.NumStates; q1++ {
			for q2 := State(0); int(q2) < d.NumStates; q2++ {
				if !deltaSeen[pk{l, q1, q2}] {
					t.Fatalf("missing transition for (%s, %d, %d)", l, q1, q2)
				}
			}
		}
	}
}
