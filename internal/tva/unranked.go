package tva

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/tree"
)

// StepTriple is an element (q, q′, q″) of the transition relation
// δ ⊆ Q×Q×Q of a stepwise unranked TVA (Section 7): while scanning the
// children of a node left to right, an automaton in accumulated state q
// that reads a child carrying state q′ may move to accumulated state q″.
type StepTriple struct {
	From  State // accumulated state before reading the child
	Child State // state of the child being read
	To    State // accumulated state after reading the child
}

// Unranked is a stepwise tree variable automaton on unranked Λ-trees for
// variable set X (Section 7). The initial relation ι assigns possible
// starting states to every node based on its label and annotation (not
// only to leaves); δ then consumes the children states one by one, like a
// word automaton; the state of a node is the accumulated state after all
// children have been read.
type Unranked struct {
	NumStates int
	Alphabet  []tree.Label
	Vars      tree.VarSet
	Init      []InitRule
	Delta     []StepTriple
	Final     []State
}

// Size returns |A| = |Q| + |ι| + |δ|.
func (a *Unranked) Size() int { return a.NumStates + len(a.Init) + len(a.Delta) }

// FinalSet returns the final states as a bit set.
func (a *Unranked) FinalSet() bitset.Set {
	f := bitset.NewSet(a.NumStates)
	for _, q := range a.Final {
		f.Add(int(q))
	}
	return f
}

// Validate checks basic well-formedness.
func (a *Unranked) Validate() error {
	labels := map[tree.Label]bool{}
	for _, l := range a.Alphabet {
		labels[l] = true
	}
	okState := func(q State) bool { return q >= 0 && int(q) < a.NumStates }
	for _, r := range a.Init {
		if !okState(r.State) {
			return fmt.Errorf("tva: unranked init state %d out of range", r.State)
		}
		if r.Set&^a.Vars != 0 {
			return fmt.Errorf("tva: unranked init set %v outside universe %v", r.Set, a.Vars)
		}
		if !labels[r.Label] {
			return fmt.Errorf("tva: unranked init label %q not in alphabet", r.Label)
		}
	}
	for _, t := range a.Delta {
		if !okState(t.From) || !okState(t.Child) || !okState(t.To) {
			return fmt.Errorf("tva: unranked transition %v has state out of range", t)
		}
	}
	for _, q := range a.Final {
		if !okState(q) {
			return fmt.Errorf("tva: unranked final state %d out of range", q)
		}
	}
	return nil
}

// initStates returns ι(l, ann) as a bit set.
func (a *Unranked) initStates(initBy map[tree.Label][]InitRule, l tree.Label, ann tree.VarSet) bitset.Set {
	s := bitset.NewSet(a.NumStates)
	for _, r := range initBy[l] {
		if r.Set == ann {
			s.Add(int(r.State))
		}
	}
	return s
}

// StatesAt computes, for every node n of the unranked tree under valuation
// ν (annotations on all nodes), the set of states assignable to n by a run
// on its subtree. This is the stepwise membership DP and the reference
// semantics for the forest-algebra translation tests.
func (a *Unranked) StatesAt(t *tree.Unranked, nu tree.Valuation) map[*tree.UNode]bitset.Set {
	initBy := a.InitByLabel()
	// step[child][from] -> set of To states.
	out := map[*tree.UNode]bitset.Set{}
	var walk func(n *tree.UNode) bitset.Set
	walk = func(n *tree.UNode) bitset.Set {
		acc := a.initStates(initBy, n.Label, nu[n.ID])
		for c := n.FirstChild; c != nil; c = c.NextSib {
			cs := walk(c)
			next := bitset.NewSet(a.NumStates)
			for _, tr := range a.Delta {
				if acc.Has(int(tr.From)) && cs.Has(int(tr.Child)) {
					next.Add(int(tr.To))
				}
			}
			acc = next
		}
		out[n] = acc
		return acc
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

// InitByLabel groups the initial relation by label.
func (a *Unranked) InitByLabel() map[tree.Label][]InitRule {
	m := map[tree.Label][]InitRule{}
	for _, r := range a.Init {
		m[r.Label] = append(m[r.Label], r)
	}
	return m
}

// Accepts reports whether the automaton accepts the unranked tree under
// valuation ν.
func (a *Unranked) Accepts(t *tree.Unranked, nu tree.Valuation) bool {
	states := a.StatesAt(t, nu)
	root := states[t.Root]
	for _, q := range a.Final {
		if root.Has(int(q)) {
			return true
		}
	}
	return false
}

// SatisfyingAssignments enumerates by brute force over all valuations of
// all nodes the satisfying assignments of the automaton on the tree. It is
// the exponential ground-truth oracle for tests; maxNodes guards against
// blow-up.
func (a *Unranked) SatisfyingAssignments(t *tree.Unranked, maxNodes int) (map[string]tree.Assignment, error) {
	nodes := t.Nodes()
	if len(nodes) > maxNodes {
		return nil, fmt.Errorf("tva: brute force on %d nodes exceeds cap %d", len(nodes), maxNodes)
	}
	subsets := []tree.VarSet{}
	tree.SubsetsOf(a.Vars, func(s tree.VarSet) { subsets = append(subsets, s) })

	results := map[string]tree.Assignment{}
	nu := tree.Valuation{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(nodes) {
			if a.Accepts(t, nu) {
				asg := nu.Assignment()
				results[asg.Key()] = asg
			}
			return
		}
		for _, s := range subsets {
			if s == 0 {
				delete(nu, nodes[i].ID)
			} else {
				nu[nodes[i].ID] = s
			}
			rec(i + 1)
		}
		delete(nu, nodes[i].ID)
	}
	rec(0)
	return results, nil
}

// reachable returns the states that occur in some run on some tree: the
// closure of the ι-states under δ (every accumulated state is also a
// possible node state, witnessed by a node with exactly the scanned
// children).
func (a *Unranked) reachable() bitset.Set {
	r := bitset.NewSet(a.NumStates)
	for _, ru := range a.Init {
		r.Add(int(ru.State))
	}
	for changed := true; changed; {
		changed = false
		for _, t := range a.Delta {
			if r.Has(int(t.From)) && r.Has(int(t.Child)) && !r.Has(int(t.To)) {
				r.Add(int(t.To))
				changed = true
			}
		}
	}
	return r
}

// useful returns the reachable states from which an accepting run can be
// completed.
func (a *Unranked) useful() bitset.Set {
	reach := a.reachable()
	u := bitset.NewSet(a.NumStates)
	for _, q := range a.Final {
		if reach.Has(int(q)) {
			u.Add(int(q))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range a.Delta {
			if !u.Has(int(t.To)) {
				continue
			}
			if reach.Has(int(t.Child)) && reach.Has(int(t.From)) {
				if !u.Has(int(t.From)) {
					u.Add(int(t.From))
					changed = true
				}
				if !u.Has(int(t.Child)) {
					u.Add(int(t.Child))
					changed = true
				}
			}
		}
	}
	return u
}

// Trim removes unreachable and useless states, renumbering the survivors.
func (a *Unranked) Trim() *Unranked {
	keep := a.useful()
	remap := make([]State, a.NumStates)
	for i := range remap {
		remap[i] = -1
	}
	n := 0
	keep.ForEach(func(q int) bool {
		remap[q] = State(n)
		n++
		return true
	})
	out := &Unranked{
		NumStates: n,
		Alphabet:  append([]tree.Label(nil), a.Alphabet...),
		Vars:      a.Vars,
	}
	for _, r := range a.Init {
		if remap[r.State] >= 0 {
			out.Init = append(out.Init, InitRule{r.Label, r.Set, remap[r.State]})
		}
	}
	for _, t := range a.Delta {
		if remap[t.From] >= 0 && remap[t.Child] >= 0 && remap[t.To] >= 0 {
			out.Delta = append(out.Delta, StepTriple{remap[t.From], remap[t.Child], remap[t.To]})
		}
	}
	for _, q := range a.Final {
		if remap[q] >= 0 {
			out.Final = append(out.Final, remap[q])
		}
	}
	return out
}
