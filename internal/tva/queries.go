package tva

import "repro/internal/tree"

// This file contains ready-made query automata used by examples, tests and
// the experiment harness. They double as documentation of how to express
// queries directly as stepwise TVAs.

// SelectLabel returns an unranked TVA over the given alphabet whose
// satisfying assignments are exactly {⟨x:n⟩} for every node n labeled l:
// the variable x selects one node with label l.
func SelectLabel(alphabet []tree.Label, l tree.Label, x tree.Var) *Unranked {
	const (
		q0 = State(0) // no selected node in subtree
		q1 = State(1) // selected node seen
	)
	a := &Unranked{
		NumStates: 2,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      tree.NewVarSet(x),
		Final:     []State{q1},
	}
	for _, lab := range alphabet {
		a.Init = append(a.Init, InitRule{lab, 0, q0})
	}
	a.Init = append(a.Init, InitRule{l, tree.NewVarSet(x), q1})
	a.Delta = []StepTriple{
		{q0, q0, q0},
		{q0, q1, q1},
		{q1, q0, q1},
	}
	return a
}

// MarkedAncestor returns the unranked TVA for the query Φ(x) of
// Theorem 9.2: it selects every node labeled special that has a proper
// ancestor labeled marked. The alphabet is {marked, unmarked, special}.
func MarkedAncestor(marked, unmarked, special tree.Label, x tree.Var) *Unranked {
	const (
		a0M = State(0) // no x in subtree, subtree root marked
		a0U = State(1) // no x in subtree, subtree root not marked
		s1  = State(2) // x in subtree, no marked proper ancestor of x inside
		s2  = State(3) // x in subtree with a marked proper ancestor inside
	)
	a := &Unranked{
		NumStates: 4,
		Alphabet:  []tree.Label{marked, unmarked, special},
		Vars:      tree.NewVarSet(x),
		Final:     []State{s2},
		Init: []InitRule{
			{marked, 0, a0M},
			{unmarked, 0, a0U},
			{special, 0, a0U},
			{special, tree.NewVarSet(x), s1},
		},
		Delta: []StepTriple{
			// Scanning a marked node: an x-child without a marked
			// ancestor gets one now.
			{a0M, a0M, a0M}, {a0M, a0U, a0M},
			{a0M, s1, s2}, {a0M, s2, s2},
			// Scanning an unmarked node: statuses pass through.
			{a0U, a0M, a0U}, {a0U, a0U, a0U},
			{a0U, s1, s1}, {a0U, s2, s2},
			// Once x is found, further children must be x-free.
			{s1, a0M, s1}, {s1, a0U, s1},
			{s2, a0M, s2}, {s2, a0U, s2},
		},
	}
	return a
}

// DescendantAtDepth returns a genuinely nondeterministic unranked TVA
// selecting the nodes x that have a descendant labeled witness exactly k
// edges below them. The automaton guesses which witness-labeled node is
// the witness, so it has O(k) states while its determinization tracks
// sets of depths and blows up to Θ(2^k) states: this is the query family
// of experiment E5 (combined complexity).
func DescendantAtDepth(alphabet []tree.Label, witness tree.Label, k int, x tree.Var) *Unranked {
	if k < 1 {
		panic("tva: DescendantAtDepth requires k >= 1")
	}
	// States: w0, ax, f, g0..g_{k-1}.
	const (
		w0 = State(0) // nothing guessed in subtree
		ax = State(1) // scanning the x node, witness not yet seen
		f  = State(2) // x verified somewhere in subtree
	)
	g := func(i int) State { return State(3 + i) }
	a := &Unranked{
		NumStates: 3 + k,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      tree.NewVarSet(x),
		Final:     []State{f},
	}
	for _, lab := range alphabet {
		a.Init = append(a.Init, InitRule{lab, 0, w0})
		a.Init = append(a.Init, InitRule{lab, tree.NewVarSet(x), ax})
	}
	// The guessed witness.
	a.Init = append(a.Init, InitRule{witness, 0, g(0)})
	add := func(from, child, to State) {
		a.Delta = append(a.Delta, StepTriple{from, child, to})
	}
	add(w0, w0, w0)
	add(w0, f, f)
	add(f, w0, f)
	add(ax, w0, ax)
	for i := 0; i < k; i++ {
		// A child holding the witness i edges below it puts the witness
		// i+1 edges below the current node.
		if i+1 < k {
			add(w0, g(i), g(i+1))
		}
		add(g(i), w0, g(i))
	}
	// The x node reads a child with the witness k-1 edges below it: the
	// witness is exactly k edges below x.
	add(ax, g(k-1), f)
	return a
}

// LeafCount returns an unranked TVA accepting (Boolean query, no
// variables) iff the number of leaves of the tree is congruent to r
// modulo m. Used in tests as a query whose state count is tunable.
func LeafCount(alphabet []tree.Label, m, r int) *Unranked {
	if m < 1 || r < 0 || r >= m {
		panic("tva: LeafCount requires 0 <= r < m")
	}
	// State m is "fresh": no children scanned yet, so a node ending in it
	// is a leaf and counts as one leaf itself. State i < m means the scan
	// finished with ≡ i (mod m) leaves in the subtree.
	fresh := State(m)
	cnt := func(i int) State { return State(((i % m) + m) % m) }
	a := &Unranked{
		NumStates: m + 1,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      0,
		Final:     []State{cnt(r)},
	}
	if r == 1%m {
		a.Final = append(a.Final, fresh)
	}
	for _, lab := range alphabet {
		a.Init = append(a.Init, InitRule{lab, 0, fresh})
	}
	for i := 0; i < m; i++ {
		a.Delta = append(a.Delta, StepTriple{fresh, cnt(i), cnt(i)})
		a.Delta = append(a.Delta, StepTriple{cnt(i), fresh, cnt(i + 1)})
		for j := 0; j < m; j++ {
			a.Delta = append(a.Delta, StepTriple{cnt(i), cnt(j), cnt(i + j)})
		}
	}
	a.Delta = append(a.Delta, StepTriple{fresh, fresh, cnt(1)})
	return a
}
