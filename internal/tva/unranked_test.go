package tva

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func TestSelectLabelSemantics(t *testing.T) {
	alpha := []tree.Label{"a", "b"}
	q := SelectLabel(alpha, "a", 0)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, _ := tree.ParseUnranked("(a (b) (a (b) (a)))")
	got, err := q.SatisfyingAssignments(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The tree has 3 a-nodes.
	if len(got) != 3 {
		t.Fatalf("got %d assignments, want 3: %v", len(got), got)
	}
	for _, asg := range got {
		if len(asg) != 1 {
			t.Fatalf("assignment %v should be a single singleton", asg)
		}
		n := tr.Node(asg[0].Node)
		if n == nil || n.Label != "a" {
			t.Fatalf("assignment %v does not select an a-node", asg)
		}
	}
}

func TestMarkedAncestorSemantics(t *testing.T) {
	q := MarkedAncestor("m", "u", "s", 0)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tree: root u, child m with children [s, u(s)], plus an s directly
	// under the root (no marked ancestor).
	tr, _ := tree.ParseUnranked("(u (m (s) (u (s))) (s))")
	got, err := q.SatisfyingAssignments(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The two s-nodes under m qualify; the s directly under root does not.
	if len(got) != 2 {
		t.Fatalf("got %d assignments, want 2: %v", len(got), got)
	}
	for _, asg := range got {
		n := tr.Node(asg[0].Node)
		if n.Label != "s" {
			t.Fatalf("selected node is %q, want s", n.Label)
		}
		// Verify it really has a marked proper ancestor.
		found := false
		for p := n.Parent; p != nil; p = p.Parent {
			if p.Label == "m" {
				found = true
			}
		}
		if !found {
			t.Fatalf("selected node n%d has no marked ancestor", n.ID)
		}
	}
}

func TestMarkedAncestorSelfDoesNotCount(t *testing.T) {
	q := MarkedAncestor("m", "u", "s", 0)
	// A single special root: no proper ancestor.
	tr, _ := tree.ParseUnranked("(s)")
	got, err := q.SatisfyingAssignments(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("root should not qualify: %v", got)
	}
}

func TestDescendantAtDepthSemantics(t *testing.T) {
	alpha := []tree.Label{"a", "b"}
	for k := 1; k <= 3; k++ {
		q := DescendantAtDepth(alpha, "b", k, 0)
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		tr, _ := tree.ParseUnranked("(a (a (b (b))) (b))")
		got, err := q.SatisfyingAssignments(tr, 10)
		if err != nil {
			t.Fatal(err)
		}
		// Independent check: enumerate nodes x with a b-descendant at
		// depth exactly k.
		want := map[tree.NodeID]bool{}
		var depthOK func(n *tree.UNode, d int) bool
		depthOK = func(n *tree.UNode, d int) bool {
			if d == 0 {
				return n.Label == "b"
			}
			for c := n.FirstChild; c != nil; c = c.NextSib {
				if depthOK(c, d-1) {
					return true
				}
			}
			return false
		}
		for _, n := range tr.Nodes() {
			for c := n.FirstChild; c != nil; c = c.NextSib {
				if depthOK(c, k-1) {
					want[n.ID] = true
					break
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d, want %d (%v)", k, len(got), len(want), got)
		}
		for _, asg := range got {
			if !want[asg[0].Node] {
				t.Fatalf("k=%d: unexpected node %d", k, asg[0].Node)
			}
		}
	}
}

func TestLeafCountSemantics(t *testing.T) {
	alpha := []tree.Label{"a"}
	trees := []string{"(a)", "(a (a))", "(a (a) (a))", "(a (a (a) (a)) (a))", "(a (a) (a) (a))"}
	leafCounts := []int{1, 1, 2, 3, 3}
	for m := 1; m <= 3; m++ {
		for r := 0; r < m; r++ {
			q := LeafCount(alpha, m, r)
			if err := q.Validate(); err != nil {
				t.Fatal(err)
			}
			for i, s := range trees {
				tr, _ := tree.ParseUnranked(s)
				want := leafCounts[i]%m == r
				if got := q.Accepts(tr, tree.Valuation{}); got != want {
					t.Fatalf("m=%d r=%d tree %s: accepts=%v want %v", m, r, s, got, want)
				}
			}
		}
	}
}

func TestUnrankedUnionIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	alpha := []tree.Label{"a", "b"}
	vars := tree.NewVarSet(0)
	for trial := 0; trial < 25; trial++ {
		a := RandomUnranked(rng, 1+rng.Intn(3), alpha, vars, 0.4)
		b := RandomUnranked(rng, 1+rng.Intn(3), alpha, vars, 0.4)
		u := UnionUnranked(a, b)
		x := IntersectUnranked(a, b)
		tr := RandomUnrankedTree(rng, 1+rng.Intn(4), alpha)
		wa, _ := a.SatisfyingAssignments(tr, 6)
		wb, _ := b.SatisfyingAssignments(tr, 6)
		wu, _ := u.SatisfyingAssignments(tr, 6)
		wx, _ := x.SatisfyingAssignments(tr, 6)
		wantU := map[string]tree.Assignment{}
		for k, v := range wa {
			wantU[k] = v
		}
		for k, v := range wb {
			wantU[k] = v
		}
		sameAssignments(t, "union", wantU, wu)
		wantX := map[string]tree.Assignment{}
		for k, v := range wa {
			if _, ok := wb[k]; ok {
				wantX[k] = v
			}
		}
		sameAssignments(t, "intersect", wantX, wx)
	}
}

func TestUnrankedDeterminizeComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	alpha := []tree.Label{"a", "b"}
	vars := tree.NewVarSet(0)
	for trial := 0; trial < 20; trial++ {
		a := RandomUnranked(rng, 1+rng.Intn(3), alpha, vars, 0.4)
		d := DeterminizeUnranked(a)
		c := ComplementUnranked(a)
		tr := RandomUnrankedTree(rng, 1+rng.Intn(3), alpha)
		nodes := tr.Nodes()
		subsets := []tree.VarSet{}
		tree.SubsetsOf(vars, func(s tree.VarSet) { subsets = append(subsets, s) })
		var rec func(i int, nu tree.Valuation)
		rec = func(i int, nu tree.Valuation) {
			if i == len(nodes) {
				av := a.Accepts(tr, nu)
				if av != d.Accepts(tr, nu) {
					t.Fatalf("trial %d: determinization differs on %v", trial, nu)
				}
				if av == c.Accepts(tr, nu) {
					t.Fatalf("trial %d: complement agrees on %v", trial, nu)
				}
				return
			}
			for _, s := range subsets {
				if s == 0 {
					delete(nu, nodes[i].ID)
				} else {
					nu[nodes[i].ID] = s
				}
				rec(i+1, nu)
			}
			delete(nu, nodes[i].ID)
		}
		rec(0, tree.Valuation{})
	}
}

func TestProjectCylindrify(t *testing.T) {
	alpha := []tree.Label{"a", "b"}
	// Query: X0 selects an a-node, X1 selects a b-node (via product of two
	// SelectLabel automata over a shared universe).
	qa := Cylindrify(SelectLabel(alpha, "a", 0), tree.NewVarSet(0, 1))
	qb := Cylindrify(SelectLabel(alpha, "b", 1), tree.NewVarSet(0, 1))
	both := IntersectUnranked(qa, qb)
	tr, _ := tree.ParseUnranked("(a (b) (a))")
	got, err := both.SatisfyingAssignments(tr, 6)
	if err != nil {
		t.Fatal(err)
	}
	// 2 a-nodes × 1 b-node = 2 assignments.
	if len(got) != 2 {
		t.Fatalf("product: got %d, want 2: %v", len(got), got)
	}
	// Projecting X1 away leaves "X0 selects an a-node and some b-node
	// exists".
	proj := Project(both, 1)
	got2, err := proj.SatisfyingAssignments(tr, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 {
		t.Fatalf("project: got %d, want 2: %v", len(got2), got2)
	}
	for _, asg := range got2 {
		if len(asg) != 1 || asg[0].Var != 0 {
			t.Fatalf("project left foreign variables: %v", asg)
		}
	}
	if proj.Vars != tree.NewVarSet(0) {
		t.Fatalf("project universe = %v", proj.Vars)
	}
}

func TestUnrankedTrimPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	alpha := []tree.Label{"a", "b"}
	for trial := 0; trial < 25; trial++ {
		a := RandomUnranked(rng, 1+rng.Intn(4), alpha, tree.NewVarSet(0), 0.4)
		tr := a.Trim()
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		ut := RandomUnrankedTree(rng, 1+rng.Intn(4), alpha)
		want, _ := a.SatisfyingAssignments(ut, 6)
		got, _ := tr.SatisfyingAssignments(ut, 6)
		sameAssignments(t, "trim", want, got)
	}
}

func TestExtendAlphabet(t *testing.T) {
	q := SelectLabel([]tree.Label{"a"}, "a", 0)
	q2 := ExtendAlphabet(q, []tree.Label{"z"})
	if len(q2.Alphabet) != 2 {
		t.Fatalf("alphabet = %v", q2.Alphabet)
	}
	tr, _ := tree.ParseUnranked("(a (z))")
	got, _ := q2.SatisfyingAssignments(tr, 5)
	if len(got) != 0 {
		t.Fatalf("tree containing foreign label should have no results: %v", got)
	}
}
