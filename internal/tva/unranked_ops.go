package tva

import (
	"sort"

	"repro/internal/tree"
)

// UnionUnranked returns a stepwise TVA accepting a tree under a valuation
// iff a or b does (disjoint union of state spaces).
func UnionUnranked(a, b *Unranked) *Unranked {
	off := State(a.NumStates)
	out := &Unranked{
		NumStates: a.NumStates + b.NumStates,
		Alphabet:  mergeAlphabets(a.Alphabet, b.Alphabet),
		Vars:      a.Vars | b.Vars,
	}
	out.Init = append(out.Init, a.Init...)
	for _, r := range b.Init {
		out.Init = append(out.Init, InitRule{r.Label, r.Set, r.State + off})
	}
	out.Delta = append(out.Delta, a.Delta...)
	for _, t := range b.Delta {
		out.Delta = append(out.Delta, StepTriple{t.From + off, t.Child + off, t.To + off})
	}
	out.Final = append(out.Final, a.Final...)
	for _, q := range b.Final {
		out.Final = append(out.Final, q+off)
	}
	return out
}

// IntersectUnranked returns the product automaton accepting exactly the
// trees and valuations accepted by both a and b. Both must have the same
// variable universe (cylindrify first if not).
func IntersectUnranked(a, b *Unranked) *Unranked {
	out := &Unranked{
		NumStates: a.NumStates * b.NumStates,
		Alphabet:  mergeAlphabets(a.Alphabet, b.Alphabet),
		Vars:      a.Vars | b.Vars,
	}
	enc := func(p, q State) State { return p*State(b.NumStates) + q }
	bInit := b.InitByLabel()
	for _, ra := range a.Init {
		for _, rb := range bInit[ra.Label] {
			if ra.Set == rb.Set {
				out.Init = append(out.Init, InitRule{ra.Label, ra.Set, enc(ra.State, rb.State)})
			}
		}
	}
	for _, ta := range a.Delta {
		for _, tb := range b.Delta {
			out.Delta = append(out.Delta, StepTriple{
				enc(ta.From, tb.From),
				enc(ta.Child, tb.Child),
				enc(ta.To, tb.To),
			})
		}
	}
	for _, fa := range a.Final {
		for _, fb := range b.Final {
			out.Final = append(out.Final, enc(fa, fb))
		}
	}
	return out.Trim()
}

// DeterminizeUnranked performs the subset construction for stepwise
// automata. The result assigns to every node the set of states the input
// automaton could assign, is deterministic and complete (the empty subset
// acts as the sink), and accepts iff the set at the root intersects F.
func DeterminizeUnranked(a *Unranked) *Unranked {
	encode := func(qs []State) string {
		b := make([]byte, 0, len(qs)*2)
		for _, q := range qs {
			b = append(b, byte(q), byte(q>>8))
		}
		return string(b)
	}
	index := map[string]State{}
	var subsets [][]State
	intern := func(qs []State) State {
		sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
		k := encode(qs)
		if s, ok := index[k]; ok {
			return s
		}
		s := State(len(subsets))
		index[k] = s
		subsets = append(subsets, qs)
		return s
	}

	out := &Unranked{Alphabet: append([]tree.Label(nil), a.Alphabet...), Vars: a.Vars}
	initBy := a.InitByLabel()

	// Seed: one subset per (label, annotation), possibly empty (sink).
	for _, l := range a.Alphabet {
		tree.SubsetsOf(a.Vars, func(ann tree.VarSet) {
			var qs []State
			seen := map[State]bool{}
			for _, r := range initBy[l] {
				if r.Set == ann && !seen[r.State] {
					seen[r.State] = true
					qs = append(qs, r.State)
				}
			}
			out.Init = append(out.Init, InitRule{l, ann, intern(qs)})
		})
	}

	// Close under the step function over all pairs of known subsets.
	type pk struct{ from, child State }
	done := map[pk]bool{}
	for frontier := 0; frontier < len(subsets); frontier++ {
		for other := 0; other < len(subsets); other++ {
			for _, p := range []pk{{State(other), State(frontier)}, {State(frontier), State(other)}} {
				if done[p] {
					continue
				}
				done[p] = true
				hasFrom := map[State]bool{}
				for _, q := range subsets[p.from] {
					hasFrom[q] = true
				}
				hasChild := map[State]bool{}
				for _, q := range subsets[p.child] {
					hasChild[q] = true
				}
				resSeen := map[State]bool{}
				var res []State
				for _, t := range a.Delta {
					if hasFrom[t.From] && hasChild[t.Child] && !resSeen[t.To] {
						resSeen[t.To] = true
						res = append(res, t.To)
					}
				}
				out.Delta = append(out.Delta, StepTriple{p.from, p.child, intern(res)})
			}
		}
	}

	out.NumStates = len(subsets)
	finals := map[State]bool{}
	for _, q := range a.Final {
		finals[q] = true
	}
	for i, qs := range subsets {
		for _, q := range qs {
			if finals[q] {
				out.Final = append(out.Final, State(i))
				break
			}
		}
	}
	return out
}

// ComplementUnranked returns a stepwise TVA accepting exactly the (tree,
// valuation) pairs a rejects, relative to a's alphabet and variable
// universe. Exponential in general (determinization).
func ComplementUnranked(a *Unranked) *Unranked {
	d := DeterminizeUnranked(a)
	finals := map[State]bool{}
	for _, q := range d.Final {
		finals[q] = true
	}
	var flipped []State
	for q := State(0); int(q) < d.NumStates; q++ {
		if !finals[q] {
			flipped = append(flipped, q)
		}
	}
	d.Final = flipped
	return d.Trim()
}

// Project existentially quantifies the variable v away: the result accepts
// (T, ν) iff a accepts (T, ν′) for some ν′ that extends ν with some
// placement of v. The variable leaves the universe.
func Project(a *Unranked, v tree.Var) *Unranked {
	out := &Unranked{
		NumStates: a.NumStates,
		Alphabet:  append([]tree.Label(nil), a.Alphabet...),
		Vars:      a.Vars.Remove(v),
		Delta:     append([]StepTriple(nil), a.Delta...),
		Final:     append([]State(nil), a.Final...),
	}
	seen := map[InitRule]bool{}
	for _, r := range a.Init {
		nr := InitRule{r.Label, r.Set.Remove(v), r.State}
		if !seen[nr] {
			seen[nr] = true
			out.Init = append(out.Init, nr)
		}
	}
	return out
}

// Cylindrify extends the variable universe to newVars ⊇ a.Vars: the new
// variables are unconstrained, i.e. every initial rule is duplicated for
// every subset of the added variables. The satisfying assignments become
// the old ones extended with arbitrary placements of the new variables.
func Cylindrify(a *Unranked, newVars tree.VarSet) *Unranked {
	added := newVars &^ a.Vars
	out := &Unranked{
		NumStates: a.NumStates,
		Alphabet:  append([]tree.Label(nil), a.Alphabet...),
		Vars:      newVars,
		Delta:     append([]StepTriple(nil), a.Delta...),
		Final:     append([]State(nil), a.Final...),
	}
	for _, r := range a.Init {
		tree.SubsetsOf(added, func(z tree.VarSet) {
			out.Init = append(out.Init, InitRule{r.Label, r.Set | z, r.State})
		})
	}
	return out
}

// ExtendAlphabet grows the alphabet of a without changing its behaviour on
// the old labels; nodes with new labels admit no run, so any tree
// containing one is rejected. Used to align alphabets before products.
func ExtendAlphabet(a *Unranked, labels []tree.Label) *Unranked {
	out := &Unranked{
		NumStates: a.NumStates,
		Alphabet:  mergeAlphabets(a.Alphabet, labels),
		Vars:      a.Vars,
		Init:      append([]InitRule(nil), a.Init...),
		Delta:     append([]StepTriple(nil), a.Delta...),
		Final:     append([]State(nil), a.Final...),
	}
	return out
}
