// Package tva implements the tree variable automata of the paper: binary
// TVAs (Section 2), which the circuit construction of Section 3 consumes,
// and unranked stepwise TVAs (Section 7), which are the user-facing query
// formalism. It provides homogenization (Lemma 2.1), trimming, boolean
// operations (product, union, determinization, complement, projection,
// cylindrification) used by the MSO compiler, and brute-force oracles used
// throughout the test suite.
package tva

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/tree"
)

// State is an automaton state, identified by its index in [0, NumStates).
type State int

// InitRule is an element (l, Y, q) of the initial relation ι ⊆ Λ×2^X×Q:
// on a leaf labeled l annotated with exactly the variable set Y, the
// automaton may assign state q.
type InitRule struct {
	Label tree.Label
	Set   tree.VarSet
	State State
}

// Triple is an element (l, q1, q2, q) of the transition relation
// δ ⊆ Λ×Q×Q×Q of a binary TVA: on an l-labeled internal node whose
// children carry states q1 (left) and q2 (right), the automaton may assign
// state q.
type Triple struct {
	Label tree.Label
	Left  State
	Right State
	Out   State
}

// Binary is a binary tree variable automaton A = (Q, ι, δ, F) over
// Λ-trees with variable set X (a Λ,X-TVA, Section 2). Annotations are read
// on leaves only.
type Binary struct {
	NumStates int
	// Alphabet is the tree alphabet Λ. Constructions that must consider
	// every label (completion, complement) iterate over it.
	Alphabet []tree.Label
	// Vars is the variable universe X.
	Vars  tree.VarSet
	Init  []InitRule
	Delta []Triple
	Final []State

	// Homogenization metadata (Lemma 2.1): when Homogenized is true,
	// OneStates marks exactly the 1-states; every live state is then
	// either a 0-state or a 1-state but not both.
	Homogenized bool
	OneStates   bitset.Set
}

// Size returns |A| = |Q| + |ι| + |δ| as defined in Section 2.
func (a *Binary) Size() int { return a.NumStates + len(a.Init) + len(a.Delta) }

// FinalSet returns the final states as a bit set.
func (a *Binary) FinalSet() bitset.Set {
	f := bitset.NewSet(a.NumStates)
	for _, q := range a.Final {
		f.Add(int(q))
	}
	return f
}

// InitByLabel groups the initial relation by label.
func (a *Binary) InitByLabel() map[tree.Label][]InitRule {
	m := map[tree.Label][]InitRule{}
	for _, r := range a.Init {
		m[r.Label] = append(m[r.Label], r)
	}
	return m
}

// DeltaByLabel groups the transition relation by label.
func (a *Binary) DeltaByLabel() map[tree.Label][]Triple {
	m := map[tree.Label][]Triple{}
	for _, t := range a.Delta {
		m[t.Label] = append(m[t.Label], t)
	}
	return m
}

// Validate checks basic well-formedness: states in range, variable sets
// within the universe, labels within the alphabet.
func (a *Binary) Validate() error {
	labels := map[tree.Label]bool{}
	for _, l := range a.Alphabet {
		labels[l] = true
	}
	okState := func(q State) bool { return q >= 0 && int(q) < a.NumStates }
	for _, r := range a.Init {
		if !okState(r.State) {
			return fmt.Errorf("tva: init rule state %d out of range", r.State)
		}
		if r.Set&^a.Vars != 0 {
			return fmt.Errorf("tva: init rule set %v outside universe %v", r.Set, a.Vars)
		}
		if !labels[r.Label] {
			return fmt.Errorf("tva: init rule label %q not in alphabet", r.Label)
		}
	}
	for _, t := range a.Delta {
		if !okState(t.Left) || !okState(t.Right) || !okState(t.Out) {
			return fmt.Errorf("tva: transition %v has state out of range", t)
		}
		if !labels[t.Label] {
			return fmt.Errorf("tva: transition label %q not in alphabet", t.Label)
		}
	}
	for _, q := range a.Final {
		if !okState(q) {
			return fmt.Errorf("tva: final state %d out of range", q)
		}
	}
	return nil
}

// StatesAt computes bottom-up, for every node of the binary tree under the
// valuation ν (annotations on leaves), the set of states the automaton can
// assign to that node by a run on its subtree. This is the standard
// membership DP; it is the reference semantics the circuit construction is
// tested against.
func (a *Binary) StatesAt(t *tree.Binary, nu tree.Valuation) map[*tree.BNode]bitset.Set {
	initBy := a.InitByLabel()
	deltaBy := a.DeltaByLabel()
	out := map[*tree.BNode]bitset.Set{}
	var walk func(n *tree.BNode) bitset.Set
	walk = func(n *tree.BNode) bitset.Set {
		s := bitset.NewSet(a.NumStates)
		if n.IsLeaf() {
			ann := nu[n.ID]
			for _, r := range initBy[n.Label] {
				if r.Set == ann {
					s.Add(int(r.State))
				}
			}
		} else {
			ls := walk(n.Left)
			rs := walk(n.Right)
			for _, tr := range deltaBy[n.Label] {
				if ls.Has(int(tr.Left)) && rs.Has(int(tr.Right)) {
					s.Add(int(tr.Out))
				}
			}
		}
		out[n] = s
		return s
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

// Accepts reports whether the automaton accepts the binary tree under the
// valuation ν.
func (a *Binary) Accepts(t *tree.Binary, nu tree.Valuation) bool {
	states := a.StatesAt(t, nu)
	root := states[t.Root]
	for _, q := range a.Final {
		if root.Has(int(q)) {
			return true
		}
	}
	return false
}

// SatisfyingAssignments enumerates, by brute force over all valuations of
// the leaves, the satisfying assignments of the automaton on the tree
// (Section 2). It is exponential and exists as the ground-truth oracle for
// tests; maxLeaves guards against accidental blow-up.
func (a *Binary) SatisfyingAssignments(t *tree.Binary, maxLeaves int) (map[string]tree.Assignment, error) {
	leaves := t.Leaves()
	if len(leaves) > maxLeaves {
		return nil, fmt.Errorf("tva: brute force on %d leaves exceeds cap %d", len(leaves), maxLeaves)
	}
	subsets := []tree.VarSet{}
	tree.SubsetsOf(a.Vars, func(s tree.VarSet) { subsets = append(subsets, s) })
	sort.Slice(subsets, func(i, j int) bool { return subsets[i] < subsets[j] })

	results := map[string]tree.Assignment{}
	nu := tree.Valuation{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(leaves) {
			if a.Accepts(t, nu) {
				asg := nu.Assignment()
				results[asg.Key()] = asg
			}
			return
		}
		for _, s := range subsets {
			if s == 0 {
				delete(nu, leaves[i].ID)
			} else {
				nu[leaves[i].ID] = s
			}
			rec(i + 1)
		}
		delete(nu, leaves[i].ID)
	}
	rec(0)
	return results, nil
}

// reachableStates returns the states that appear in some run on some tree
// (bottom-up closure over ι and δ).
func (a *Binary) reachableStates() bitset.Set {
	reach := bitset.NewSet(a.NumStates)
	for _, r := range a.Init {
		reach.Add(int(r.State))
	}
	for changed := true; changed; {
		changed = false
		for _, t := range a.Delta {
			if reach.Has(int(t.Left)) && reach.Has(int(t.Right)) && !reach.Has(int(t.Out)) {
				reach.Add(int(t.Out))
				changed = true
			}
		}
	}
	return reach
}

// usefulStates returns the states from which a final state can be reached
// by continuing a run upwards (co-reachability), intersected with
// reachability. Trimming to useful states never changes the satisfying
// assignments.
func (a *Binary) usefulStates() bitset.Set {
	reach := a.reachableStates()
	use := bitset.NewSet(a.NumStates)
	for _, q := range a.Final {
		if reach.Has(int(q)) {
			use.Add(int(q))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range a.Delta {
			if use.Has(int(t.Out)) && reach.Has(int(t.Left)) && reach.Has(int(t.Right)) {
				if !use.Has(int(t.Left)) {
					use.Add(int(t.Left))
					changed = true
				}
				if !use.Has(int(t.Right)) {
					use.Add(int(t.Right))
					changed = true
				}
			}
		}
	}
	return use
}

// Trim removes states that are unreachable or useless, renumbering the
// survivors. The satisfying assignments are unchanged. Homogenization
// metadata is preserved.
func (a *Binary) Trim() *Binary {
	keep := a.usefulStates()
	remap := make([]State, a.NumStates)
	for i := range remap {
		remap[i] = -1
	}
	n := 0
	keep.ForEach(func(q int) bool {
		remap[q] = State(n)
		n++
		return true
	})
	out := &Binary{
		NumStates:   n,
		Alphabet:    append([]tree.Label(nil), a.Alphabet...),
		Vars:        a.Vars,
		Homogenized: a.Homogenized,
		OneStates:   bitset.NewSet(n),
	}
	for _, r := range a.Init {
		if remap[r.State] >= 0 {
			out.Init = append(out.Init, InitRule{r.Label, r.Set, remap[r.State]})
		}
	}
	for _, t := range a.Delta {
		if remap[t.Left] >= 0 && remap[t.Right] >= 0 && remap[t.Out] >= 0 {
			out.Delta = append(out.Delta, Triple{t.Label, remap[t.Left], remap[t.Right], remap[t.Out]})
		}
	}
	for _, q := range a.Final {
		if remap[q] >= 0 {
			out.Final = append(out.Final, remap[q])
		}
	}
	if a.Homogenized {
		for q := 0; q < a.NumStates; q++ {
			if remap[q] >= 0 && a.OneStates.Has(q) {
				out.OneStates.Add(int(remap[q]))
			}
		}
	}
	return out
}
