package tva

import "repro/internal/tree"

// ambiguityBudget caps the work Unambiguous may spend (pair-transition
// visits across fixpoint passes), and ambiguityPairCap caps the n×n
// pair tables it allocates (two []bool of that size, so ~8 MB at the
// cap). Beyond either, the check gives up and reports false —
// "possibly ambiguous" — which is always sound for callers gating
// exact-count fast paths on the result.
const (
	ambiguityBudget  = 1 << 26
	ambiguityPairCap = 1 << 22
)

// Unambiguous reports whether the automaton admits at most one
// accepting run per (tree, valuation). When the automaton is
// homogenized the check is restricted to valuations with at least one
// nonempty annotation: every run on such an input ends in a 1-state,
// and the multiplicity of the empty assignment is carried separately by
// the circuit construction (the emptyOK flag of RootAccepting), so
// 0-state ambiguity never affects derivation counts.
//
// Unambiguity is what makes the counting semiring exact: the circuit of
// Lemma 3.7 has one derivation per (run, valuation) pair, so for an
// unambiguous automaton the derivation count of package counting equals
// the number of satisfying assignments, and rank-indexed direct access
// over derivation counts agrees with the duplicate-free enumeration.
//
// The check is the standard product construction, polynomial in |A|:
// track the pairs of states reachable by two runs on the same (tree,
// valuation), with a bit recording whether the two runs differ anywhere
// in the subtree (root included); the automaton is ambiguous iff a
// distinct pair of final (1-)states is reachable. False negatives occur
// only when the product exceeds ambiguityBudget, never false positives.
func (a *Binary) Unambiguous() bool {
	n := a.NumStates
	if n == 0 {
		return true
	}
	if n > ambiguityPairCap/n {
		return false
	}
	reach := make([]bool, n*n) // pair (p,q) reachable on some (tree, valuation)
	dist := make([]bool, n*n)  // ... by two runs that differ somewhere

	// Leaf pairs: two initial rules firing on the same (label, annotation).
	type leafKey struct {
		l tree.Label
		s tree.VarSet
	}
	byInit := map[leafKey][]State{}
	for _, r := range a.Init {
		k := leafKey{r.Label, r.Set}
		byInit[k] = append(byInit[k], r.State)
	}
	for _, qs := range byInit {
		for _, p := range qs {
			for _, q := range qs {
				reach[int(p)*n+int(q)] = true
				if p != q {
					dist[int(p)*n+int(q)] = true
				}
			}
		}
	}

	byLabel := a.DeltaByLabel()
	work := n * n
	for changed := true; changed; {
		changed = false
		for _, ts := range byLabel {
			for _, t1 := range ts {
				for _, t2 := range ts {
					work++
					if work > ambiguityBudget {
						return false
					}
					lp := int(t1.Left)*n + int(t2.Left)
					rp := int(t1.Right)*n + int(t2.Right)
					if !reach[lp] || !reach[rp] {
						continue
					}
					op := int(t1.Out)*n + int(t2.Out)
					if !reach[op] {
						reach[op] = true
						changed = true
					}
					if !dist[op] && (dist[lp] || dist[rp] || t1.Out != t2.Out) {
						dist[op] = true
						changed = true
					}
				}
			}
		}
	}

	relevant := func(q State) bool {
		return !a.Homogenized || a.OneStates.Has(int(q))
	}
	for _, f1 := range a.Final {
		if !relevant(f1) {
			continue
		}
		for _, f2 := range a.Final {
			if !relevant(f2) {
				continue
			}
			if dist[int(f1)*n+int(f2)] {
				return false
			}
		}
	}
	return true
}
