package tva

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

// boolQueryAB is a tiny binary TVA over alphabet {a, b} with one variable
// X0 that selects exactly one a-labeled leaf (any internal label).
func boolQueryAB() *Binary {
	const (
		q0 = State(0) // no selection below
		q1 = State(1) // selection below
	)
	x := tree.NewVarSet(0)
	a := &Binary{
		NumStates: 2,
		Alphabet:  []tree.Label{"a", "b"},
		Vars:      x,
		Init: []InitRule{
			{"a", 0, q0}, {"b", 0, q0},
			{"a", x, q1},
		},
		Final: []State{q1},
	}
	for _, l := range []tree.Label{"a", "b"} {
		a.Delta = append(a.Delta,
			Triple{l, q0, q0, q0},
			Triple{l, q1, q0, q1},
			Triple{l, q0, q1, q1},
		)
	}
	return a
}

func TestBinaryValidate(t *testing.T) {
	a := boolQueryAB()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *a
	bad.Final = []State{5}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected out-of-range final state to fail")
	}
	bad2 := *a
	bad2.Init = append([]InitRule(nil), a.Init...)
	bad2.Init[0].Label = "zzz"
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected unknown label to fail")
	}
	bad3 := *a
	bad3.Init = append([]InitRule(nil), a.Init...)
	bad3.Init[0].Set = tree.NewVarSet(7)
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected out-of-universe variable to fail")
	}
}

func TestBinaryAcceptsSelectA(t *testing.T) {
	a := boolQueryAB()
	bt, err := tree.ParseBinary("(b (a) (b (b) (a)))")
	if err != nil {
		t.Fatal(err)
	}
	leaves := bt.Leaves()
	// leaves: a, b, a with IDs in creation order; find them by label.
	var aLeaves, bLeaves []*tree.BNode
	for _, l := range leaves {
		if l.Label == "a" {
			aLeaves = append(aLeaves, l)
		} else {
			bLeaves = append(bLeaves, l)
		}
	}
	if len(aLeaves) != 2 || len(bLeaves) != 1 {
		t.Fatalf("unexpected leaves %d/%d", len(aLeaves), len(bLeaves))
	}
	if a.Accepts(bt, tree.Valuation{}) {
		t.Fatal("empty valuation should be rejected")
	}
	for _, l := range aLeaves {
		if !a.Accepts(bt, tree.Valuation{l.ID: tree.NewVarSet(0)}) {
			t.Fatalf("selecting a-leaf n%d should be accepted", l.ID)
		}
	}
	if a.Accepts(bt, tree.Valuation{bLeaves[0].ID: tree.NewVarSet(0)}) {
		t.Fatal("selecting b-leaf should be rejected")
	}
	if a.Accepts(bt, tree.Valuation{aLeaves[0].ID: tree.NewVarSet(0), aLeaves[1].ID: tree.NewVarSet(0)}) {
		t.Fatal("selecting two leaves should be rejected")
	}
}

func TestBinarySatisfyingAssignmentsBruteForce(t *testing.T) {
	a := boolQueryAB()
	bt, _ := tree.ParseBinary("(b (a) (b (b) (a)))")
	got, err := a.SatisfyingAssignments(bt, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d assignments, want 2: %v", len(got), got)
	}
	for _, asg := range got {
		if len(asg) != 1 || asg[0].Var != 0 {
			t.Fatalf("unexpected assignment %v", asg)
		}
	}
	// Cap enforcement.
	if _, err := a.SatisfyingAssignments(bt, 2); err == nil {
		t.Fatal("expected cap error")
	}
}

func TestHomogenizePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		a := RandomBinary(rng, 1+rng.Intn(4), []tree.Label{"a", "b"}, tree.NewVarSet(0), 0.35)
		h := a.Homogenize()
		if !h.Homogenized {
			t.Fatal("Homogenized flag unset")
		}
		if !h.IsHomogenized() {
			t.Fatalf("trial %d: result not homogenized", trial)
		}
		zero, one := h.ZeroOneStates()
		for q := 0; q < h.NumStates; q++ {
			// Trimmed automaton: every state is 0 or 1, never both, and
			// OneStates matches.
			if zero.Has(q) == one.Has(q) {
				t.Fatalf("trial %d: state %d is 0=%v 1=%v", trial, q, zero.Has(q), one.Has(q))
			}
			if one.Has(q) != h.OneStates.Has(q) {
				t.Fatalf("trial %d: OneStates disagrees at %d", trial, q)
			}
		}
	}
}

func TestHomogenizeEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		a := RandomBinary(rng, 1+rng.Intn(3), []tree.Label{"a", "b"}, tree.NewVarSet(0, 1), 0.4)
		h := a.Homogenize()
		bt := RandomBinaryTree(rng, 1+rng.Intn(4), []tree.Label{"a", "b"})
		want, err := a.SatisfyingAssignments(bt, 6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.SatisfyingAssignments(bt, 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("trial %d: |want|=%d |got|=%d", trial, len(want), len(got))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: missing assignment %s", trial, k)
			}
		}
	}
}

func TestHomogenizeLinearSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		a := RandomBinary(rng, 2+rng.Intn(5), []tree.Label{"a", "b", "c"}, tree.NewVarSet(0), 0.3)
		h := a.Homogenize()
		if h.NumStates > 2*a.NumStates {
			t.Fatalf("homogenization more than doubled states: %d -> %d", a.NumStates, h.NumStates)
		}
		if len(h.Delta) > 4*len(a.Delta) {
			t.Fatalf("homogenization blew up transitions: %d -> %d", len(a.Delta), len(h.Delta))
		}
	}
}

func TestTrimPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		a := RandomBinary(rng, 1+rng.Intn(4), []tree.Label{"a", "b"}, tree.NewVarSet(0), 0.4)
		tr := a.Trim()
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bt := RandomBinaryTree(rng, 1+rng.Intn(4), []tree.Label{"a", "b"})
		want, _ := a.SatisfyingAssignments(bt, 6)
		got, _ := tr.SatisfyingAssignments(bt, 6)
		if len(want) != len(got) {
			t.Fatalf("trial %d: trim changed semantics: %d vs %d", trial, len(want), len(got))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: trim lost %s", trial, k)
			}
		}
	}
}
