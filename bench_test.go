// Benchmarks mirroring the experiment harness (cmd/benchtables), one per
// table/figure claim (see DESIGN.md §4 for the index). Absolute numbers
// are machine-dependent; the shapes (flat vs logarithmic vs linear vs
// exponential) are what reproduce the paper.
package enumtrees_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	enumtrees "repro"
	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/enumerate"
	"repro/internal/experiments"
	"repro/internal/forest"
	"repro/internal/markedanc"
	"repro/internal/spanner"
	"repro/internal/tree"
	"repro/internal/tva"
	"repro/internal/workload"
)

// mustTree builds a workload tree or fails the benchmark.
func mustTree(b *testing.B, shape string, n int, rng *rand.Rand) *tree.Unranked {
	b.Helper()
	t, err := workload.Tree(shape, n, rng)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func mustEnum(b *testing.B, t *tree.Unranked, q *tva.Unranked, opts core.Options) *core.TreeEnumerator {
	b.Helper()
	e, err := core.NewTreeEnumerator(t, q, opts)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkE1Table1 measures one update followed by re-enumerating the
// first results — the workload the Table 1 comparison is about — for the
// paper's algorithm and the rebuild baseline.
func BenchmarkE1Table1(b *testing.B) {
	q := workload.AncestorQuery()
	for _, n := range []int{1000, 16000} {
		rng := rand.New(rand.NewSource(1))
		ut := mustTree(b, workload.ShapeRandom, n, rng)
		b.Run(fmt.Sprintf("ours/n=%d", n), func(b *testing.B) {
			e := mustEnum(b, ut.Clone(), q, core.Options{})
			ed := workload.NewEditor(e, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ed.Step(); err != nil {
					b.Fatal(err)
				}
				k := 0
				for range e.Results() {
					if k++; k >= 10 {
						break
					}
				}
			}
		})
		b.Run(fmt.Sprintf("rebuild/n=%d", n), func(b *testing.B) {
			e, err := baseline.NewRebuildEnumerator(ut.Clone(), q, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			edits := workload.RandomEdits(b.N, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := workload.Apply(e, edits[i]); err != nil {
					b.Fatal(err)
				}
				k := 0
				for range e.Results() {
					if k++; k >= 10 {
						break
					}
				}
			}
		})
	}
}

// BenchmarkE2Preprocessing measures full preprocessing; ns/op divided by
// n must stay flat across sizes (linear preprocessing).
func BenchmarkE2Preprocessing(b *testing.B) {
	q := workload.AncestorQuery()
	for _, n := range []int{2000, 16000, 128000} {
		rng := rand.New(rand.NewSource(2))
		ut := mustTree(b, workload.ShapeRandom, n, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := mustEnum(b, ut.Clone(), q, core.Options{})
				_ = e
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/node")
		})
	}
}

// BenchmarkE3Delay measures per-result delay; must not grow with n.
func BenchmarkE3Delay(b *testing.B) {
	q := workload.AncestorQuery()
	for _, n := range []int{1000, 16000, 256000} {
		rng := rand.New(rand.NewSource(3))
		e := mustEnum(b, mustTree(b, workload.ShapeRandom, n, rng), q, core.Options{})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			produced := 0
			b.ResetTimer()
			for produced < b.N {
				for range e.Results() {
					if produced++; produced >= b.N {
						break
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/result")
		})
	}
}

// BenchmarkE4Updates measures one tree update; must grow like log n.
func BenchmarkE4Updates(b *testing.B) {
	q := workload.AncestorQuery()
	for _, n := range []int{1000, 16000, 256000} {
		rng := rand.New(rand.NewSource(4))
		e := mustEnum(b, mustTree(b, workload.ShapeRandom, n, rng), q, core.Options{})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ed := workload.NewEditor(e, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ed.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Combined sweeps the nondeterministic automaton size: ours
// polynomial, determinize-first exponential.
func BenchmarkE5Combined(b *testing.B) {
	alpha := []tree.Label{"a", "b"}
	rng := rand.New(rand.NewSource(5))
	ut := tva.RandomUnrankedTree(rng, 2000, alpha)
	for _, k := range []int{2, 4, 5} {
		q := tva.DescendantAtDepth(alpha, "b", k, 0)
		b.Run(fmt.Sprintf("ours/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEnum(b, ut.Clone(), q, core.Options{})
			}
		})
		b.Run(fmt.Sprintf("determinize/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.DeterminizeFirst(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Words measures word updates and delay (Theorem 8.5).
func BenchmarkE6Words(b *testing.B) {
	p := spanner.Contains(spanner.Cat(
		spanner.Lit{Label: "a"},
		spanner.Capture{Var: 0, Inner: spanner.Plus{Inner: spanner.Lit{Label: "b"}}},
	))
	q, err := spanner.CompileWVA(p, []tree.Label{"a", "b", "c"})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1000, 16000, 256000} {
		rng := rand.New(rand.NewSource(6))
		e, err := core.NewWordEnumerator(workload.Word(n, rng), q, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("update/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ids, _ := e.Word()
				if err := e.Relabel(ids[rng.Intn(len(ids))], workload.Word(1, rng)[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7MarkedAncestor measures one marked-ancestor operation via
// the enumeration reduction on deep paths vs the walk baseline.
func BenchmarkE7MarkedAncestor(b *testing.B) {
	for _, n := range []int{1000, 16000} {
		rng := rand.New(rand.NewSource(7))
		ut := mustTree(b, workload.ShapePath, n, rng)
		for _, nd := range ut.Nodes() {
			if err := ut.Relabel(nd.ID, markedanc.Unmarked); err != nil {
				b.Fatal(err)
			}
		}
		nodes := ut.Nodes()
		deepest := nodes[len(nodes)-1]
		enum, err := markedanc.NewEnumerationSolver(ut)
		if err != nil {
			b.Fatal(err)
		}
		walk := markedanc.NewWalkSolver(ut)
		b.Run(fmt.Sprintf("enum/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := enum.Query(deepest.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("walk/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := walk.Query(deepest.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8JumpAblation measures a full enumeration pass on deep combs
// with matches only at the bottom: indexed flat, naive linear in depth.
func BenchmarkE8JumpAblation(b *testing.B) {
	x := tree.NewVarSet(0)
	raw := &tva.Binary{
		NumStates: 2,
		Alphabet:  []tree.Label{"a", "b"},
		Vars:      x,
		Init: []tva.InitRule{
			{Label: "a", Set: 0, State: 0}, {Label: "b", Set: 0, State: 0},
			{Label: "a", Set: x, State: 1},
		},
		Final: []tva.State{1},
	}
	for _, l := range []tree.Label{"a", "b"} {
		raw.Delta = append(raw.Delta,
			tva.Triple{Label: l, Left: 0, Right: 0, Out: 0},
			tva.Triple{Label: l, Left: 1, Right: 0, Out: 1},
			tva.Triple{Label: l, Left: 0, Right: 1, Out: 1},
		)
	}
	bd, err := circuit.NewBuilder(raw.Homogenize())
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{1000, 20000} {
		bt := tree.NewBinary()
		cur := bt.Leaf("a")
		for i := 0; i < depth; i++ {
			lab := tree.Label("b")
			if i < 15 {
				lab = "a"
			}
			cur = bt.Inner("b", cur, bt.Leaf(lab))
		}
		bt.SetRoot(cur)
		c := bd.Build(bt)
		croot := enumerate.BuildIndex(c)
		gamma, emptyOK := bd.RootAccepting(c)
		for _, mode := range []struct {
			name string
			m    enumerate.Mode
		}{{"indexed", enumerate.ModeIndexed}, {"naive", enumerate.ModeNaive}} {
			b.Run(fmt.Sprintf("%s/depth=%d", mode.name, depth), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					k := 0
					for range enumerate.Assignments(croot, gamma, emptyOK, mode.m) {
						k++
					}
					if k != 16 {
						b.Fatalf("got %d results", k)
					}
				}
			})
		}
	}
}

// BenchmarkE9CircuitSize builds circuits and reports gates per node.
func BenchmarkE9CircuitSize(b *testing.B) {
	q := workload.AncestorQuery()
	for _, n := range []int{4000, 64000} {
		rng := rand.New(rand.NewSource(9))
		ut := mustTree(b, workload.ShapeRandom, n, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var st core.Stats
			for i := 0; i < b.N; i++ {
				st = mustEnum(b, ut.Clone(), q, core.Options{}).Stats()
			}
			gates := st.UnionGates + st.TimesGates + st.VarGates
			b.ReportMetric(float64(gates)/float64(n), "gates/node")
			b.ReportMetric(float64(st.CircuitWidth), "width")
		})
	}
}

// BenchmarkE10MatMul compares the two relation compositions.
func BenchmarkE10MatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	for _, w := range []int{16, 64, 256} {
		a := bitset.NewMatrix(w, w)
		c := bitset.NewMatrix(w, w)
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				if rng.Float64() < 0.3 {
					a.Set(i, j)
				}
				if rng.Float64() < 0.3 {
					c.Set(i, j)
				}
			}
		}
		b.Run(fmt.Sprintf("naive/w=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bitset.ComposeNaive(a, c)
			}
		})
		b.Run(fmt.Sprintf("packed/w=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bitset.Compose(a, c)
			}
		})
	}
}

// BenchmarkT1Homogenize measures Lemma 2.1.
func BenchmarkT1Homogenize(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	for _, q := range []int{16, 64} {
		a := tva.RandomBinary(rng, q, []tree.Label{"a", "b"}, tree.NewVarSet(0), 0.02)
		b.Run(fmt.Sprintf("Q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Homogenize()
			}
		})
	}
}

// BenchmarkT2Translation measures the Lemma 7.4 translation.
func BenchmarkT2Translation(b *testing.B) {
	alpha := []tree.Label{"a", "b"}
	for _, k := range []int{2, 4, 5} {
		q := tva.DescendantAtDepth(alpha, "b", k, 0)
		b.Run(fmt.Sprintf("tree/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := forest.Translate(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentReaders measures aggregate snapshot-enumeration
// throughput at 1/4/16 reader goroutines while the engine applies a
// continuous update stream. Readers are lock-free (one atomic load per
// snapshot, then a walk of frozen structure), so ns/op — the aggregate
// cost per produced result — should drop roughly with the core count as
// readers are added; the update stream runs unthrottled throughout.
// cmd/benchtables -concurrent emits the same measurement as a
// machine-readable JSON baseline.
func BenchmarkConcurrentReaders(b *testing.B) {
	q := workload.AncestorQuery()
	rng := rand.New(rand.NewSource(20))
	ut := mustTree(b, workload.ShapeRandom, 20000, rng)
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			eng, err := engine.NewTree(ut.Clone(), q, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var stopWriter atomic.Bool
			var writerWG sync.WaitGroup
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				wrng := rand.New(rand.NewSource(21))
				// Relabels keep the ID set stable, so list the nodes once:
				// the update stream must not be throttled by O(n) scans.
				nodes := eng.Tree().Nodes()
				for !stopWriter.Load() {
					n := nodes[wrng.Intn(len(nodes))]
					if _, err := eng.Relabel(n.ID, workload.Word(1, wrng)[0]); err != nil {
						panic(err)
					}
				}
			}()

			var produced atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for produced.Load() < int64(b.N) {
						for range eng.Snapshot().Results() {
							if produced.Add(1) >= int64(b.N) {
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			stopWriter.Store(true)
			writerWG.Wait()
		})
	}
}

// BenchmarkApplyBatch compares k clustered relabels applied one by one
// (k publications) against one ApplyBatch call (one publication with
// amortized box repair).
func BenchmarkApplyBatch(b *testing.B) {
	q := workload.AncestorQuery()
	rng := rand.New(rand.NewSource(22))
	ut := mustTree(b, workload.ShapeRandom, 16000, rng)
	nodes := ut.Nodes()
	const k = 16
	mkBatch := func(wrng *rand.Rand) []engine.Update {
		batch := make([]engine.Update, k)
		for i := range batch {
			batch[i] = engine.Update{
				Op:    engine.OpRelabel,
				Node:  nodes[wrng.Intn(len(nodes))].ID,
				Label: workload.Word(1, wrng)[0],
			}
		}
		return batch
	}
	b.Run(fmt.Sprintf("batched/k=%d", k), func(b *testing.B) {
		eng, err := engine.NewTree(ut.Clone(), q, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		wrng := rand.New(rand.NewSource(23))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.ApplyBatch(mkBatch(wrng)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("sequential/k=%d", k), func(b *testing.B) {
		eng, err := engine.NewTree(ut.Clone(), q, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		wrng := rand.New(rand.NewSource(23))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, u := range mkBatch(wrng) {
				if _, err := eng.Relabel(u.Node, u.Label); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkDirectAccess mirrors experiment D1: Count and At(j) latency
// on a large answer set, the engine's semiring/descent fast paths vs
// the drain baseline. The direct variants must be flat in the answer
// count (the drain variants are the linear comparison anchors).
// cmd/benchtables -directaccess emits the same measurement as the
// machine-readable BENCH_directaccess.json baseline.
func BenchmarkDirectAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	ut := mustTree(b, workload.ShapeRandom, 16000, rng)
	q := tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0)
	eng, err := engine.NewTree(ut, q, engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	snap := eng.Snapshot()
	if !snap.DirectAccess() {
		b.Fatal("select query must be direct-access capable")
	}
	answers := 0
	for range snap.Results() {
		answers++
	}
	mid := answers / 2
	b.Run("Count/direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if snap.Count() != answers {
				b.Fatal("count diverged")
			}
		}
	})
	b.Run("Count/drain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := 0
			for range snap.Results() {
				c++
			}
			if c != answers {
				b.Fatal("count diverged")
			}
		}
	})
	b.Run("At/direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := snap.At(mid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("At/drain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := 0
			for range snap.Results() {
				if j == mid {
					break
				}
				j++
			}
		}
	})
	b.Run("Page/direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := snap.Page(mid, 16); len(got) != 16 {
				b.Fatal("short page")
			}
		}
	})
}

// BenchmarkParallelAll mirrors experiment E1-par: full-result
// materialization through the sequential drain vs rank-partitioned
// parallel drains at several worker counts, plus the order-preserving
// Chunks stream. On one core all variants should sit within noise of
// each other (workers time-share); the scaling shape is what
// multi-core runs reproduce. cmd/benchtables -enumparallel emits the
// same measurement as a machine-readable JSON baseline.
func BenchmarkParallelAll(b *testing.B) {
	rng := rand.New(rand.NewSource(151))
	ut := mustTree(b, workload.ShapeRandom, 16000, rng)
	q := tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0)
	eng, err := engine.NewTree(ut, q, engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	snap := eng.Snapshot()
	answers := snap.Count()
	b.Run("All", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := snap.All(); len(got) != answers {
				b.Fatal("short drain")
			}
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ParallelAll/w=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := snap.ParallelAll(w); len(got) != answers {
					b.Fatal("short drain")
				}
			}
		})
	}
	b.Run("Chunks/w=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for chunk := range snap.Chunks(4, 512) {
				n += len(chunk)
			}
			if n != answers {
				b.Fatal("short drain")
			}
		}
	})
}

// BenchmarkMultiQueryBatch mirrors experiment C2: one batched update
// stream fanned out to k standing queries, a shared QuerySet (term work
// once, k box repairs) vs k independent engines (everything k times).
// cmd/benchtables -multiquery emits the same measurement as a
// machine-readable JSON baseline.
func BenchmarkMultiQueryBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	ut := mustTree(b, workload.ShapeRandom, 16000, rng)
	nodes := ut.Nodes()
	alpha := []tree.Label{"a", "b", "c"}
	queries := []*tva.Unranked{
		tva.SelectLabel(alpha, "a", 0),
		tva.SelectLabel(alpha, "b", 0),
		tva.SelectLabel(alpha, "c", 0),
		workload.AncestorQuery(),
	}
	const batchLen = 8
	mkBatch := func(wrng *rand.Rand) []engine.Update {
		batch := make([]engine.Update, batchLen)
		for i := range batch {
			batch[i] = engine.Update{
				Op:    engine.OpRelabel,
				Node:  nodes[wrng.Intn(len(nodes))].ID,
				Label: workload.Word(1, wrng)[0],
			}
		}
		return batch
	}
	k := len(queries)
	b.Run(fmt.Sprintf("shared/k=%d", k), func(b *testing.B) {
		qs := engine.NewTreeSet(ut.Clone())
		for _, q := range queries {
			if _, err := qs.Register(q, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		wrng := rand.New(rand.NewSource(25))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := qs.ApplyBatch(mkBatch(wrng)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("independent/k=%d", k), func(b *testing.B) {
		engines := make([]*engine.TreeEngine, k)
		for i, q := range queries {
			e, err := engine.NewTree(ut.Clone(), q, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			engines[i] = e
		}
		wrng := rand.New(rand.NewSource(25))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := mkBatch(wrng)
			for _, e := range engines {
				if _, _, err := e.ApplyBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkParallelPipelines mirrors experiment C3: per-edit publish
// latency of a QuerySet with k=16 standing queries when the per-query
// trunk repair is fanned out across workers ∈ {1, 4, 8}
// (engine.SetWorkers; workers=1 is the deterministic sequential path).
// On w cores the parallel variants should approach serial/w; on a
// single core they time-share and mainly pin that the pool adds no
// meaningful overhead. cmd/benchtables -parallel emits the same
// measurement as the machine-readable BENCH_parallel.json baseline.
func BenchmarkParallelPipelines(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	ut := mustTree(b, workload.ShapeRandom, 16000, rng)
	_, queries := experiments.ParallelQueries() // the C3 pool of 16
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("k=16/workers=%d", workers), func(b *testing.B) {
			qs := engine.NewTreeSet(ut.Clone())
			qs.SetWorkers(workers)
			for _, q := range queries {
				if _, err := qs.Register(q, engine.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			nodes := qs.Tree().Nodes()
			wrng := rand.New(rand.NewSource(42))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := nodes[wrng.Intn(len(nodes))]
				if _, err := qs.Relabel(n.ID, workload.Word(1, wrng)[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoxRepair mirrors experiment B1: per-update trunk repair cost
// (ns/op and allocs/op) on an E4-style single-relabel stream. "pruned"
// is the default engine (precompiled transition programs + builder
// scratch arena + signature-pruned reuse), "fullrebuild" disables the
// reuse fast path, and "neutral" relabels only nodes and labels the
// query does not distinguish, so pruning reuses the entire trunk on
// every edit. cmd/benchtables -build emits the same measurement as the
// machine-readable BENCH_build.json baseline (with the pre-PR reference
// embedded); the acceptance comparison is pruned vs that baseline.
func BenchmarkBoxRepair(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	ut := mustTree(b, workload.ShapeRandom, 16000, rng)
	q := tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0)
	for _, cfg := range []struct {
		name   string
		labels []tree.Label
		opts   engine.Options
	}{
		{"pruned", []tree.Label{"a", "b", "c"}, engine.Options{}},
		{"fullrebuild", []tree.Label{"a", "b", "c"}, engine.Options{FullRebuild: true}},
		{"neutral", []tree.Label{"a", "c"}, engine.Options{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			eng, err := engine.NewTree(ut.Clone(), q, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			var ids []tree.NodeID
			for _, n := range eng.Tree().Nodes() {
				if cfg.name == "neutral" && n.Label == "b" {
					continue
				}
				ids = append(ids, n.ID)
			}
			wrng := rand.New(rand.NewSource(52))
			// Warm the repair path (and settle the neutral stream onto its
			// label pool) before timing.
			for i := 0; i < 64; i++ {
				if _, err := eng.Relabel(ids[wrng.Intn(len(ids))], cfg.labels[wrng.Intn(len(cfg.labels))]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Relabel(ids[wrng.Intn(len(ids))], cfg.labels[wrng.Intn(len(cfg.labels))]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFacadeQuickstart keeps the README flow honest under -bench.
func BenchmarkFacadeQuickstart(b *testing.B) {
	tr, err := enumtrees.ParseTree("(a (b) (a (b)))")
	if err != nil {
		b.Fatal(err)
	}
	q := enumtrees.SelectLabel([]enumtrees.Label{"a", "b"}, "b", 0)
	e, err := enumtrees.New(tr, q, enumtrees.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if e.Count() != 2 {
			b.Fatal("wrong count")
		}
	}
}
