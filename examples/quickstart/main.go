// Command quickstart is the smallest end-to-end tour of the library:
// build a tree, run an automaton query, enumerate, edit the tree, and
// enumerate again — all through the public facade.
package main

import (
	"fmt"
	"log"

	enumtrees "repro"
)

func main() {
	// A small document tree.
	t, err := enumtrees.ParseTree("(doc (sec (par) (fig)) (sec (par)))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree:", t)

	// Query: X0 selects a node labeled "fig".
	alpha := []enumtrees.Label{"doc", "sec", "par", "fig"}
	q := enumtrees.SelectLabel(alpha, "fig", 0)

	// Preprocess (linear time) and enumerate (constant delay per result).
	e, err := enumtrees.New(t, q, enumtrees.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("figures:")
	for asg := range e.Results() {
		fmt.Printf("  %v (node %d)\n", asg, asg[0].Node)
	}

	// Edit the tree: add a figure to the second section (O(log n)).
	var secondSec enumtrees.NodeID
	for _, n := range t.Nodes() {
		if n.Label == "sec" {
			secondSec = n.ID // last one wins
		}
	}
	newFig, err := e.InsertFirstChild(secondSec, "fig")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted fig as node %d\n", newFig)

	// Enumeration restarts on the updated tree.
	fmt.Println("figures now:", e.Count())
	st := e.Stats()
	fmt.Printf("structures: %d boxes, width %d, term height %d\n",
		st.Boxes, st.CircuitWidth, st.TermHeight)
}
