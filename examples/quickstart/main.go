// Command quickstart is the smallest end-to-end tour of the library:
// build a tree, run an automaton query, enumerate, edit the tree, and
// enumerate again — all through the public facade. It finishes with the
// snapshot engine — a batched update and an old snapshot that keeps
// answering for its own version — and a QuerySet where a duplicate
// registration is deduped onto one shared pipeline.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	enumtrees "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// A small document tree.
	t, err := enumtrees.ParseTree("(doc (sec (par) (fig)) (sec (par)))")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "tree:", t)

	// Query: X0 selects a node labeled "fig".
	alpha := []enumtrees.Label{"doc", "sec", "par", "fig"}
	q := enumtrees.SelectLabel(alpha, "fig", 0)

	// Preprocess (linear time) and enumerate (constant delay per result).
	e, err := enumtrees.New(t, q, enumtrees.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "figures:")
	for asg := range e.Results() {
		fmt.Fprintf(w, "  %v (node %d)\n", asg, asg[0].Node)
	}

	// Edit the tree: add a figure to the second section (O(log n)).
	var secondSec enumtrees.NodeID
	for _, n := range t.Nodes() {
		if n.Label == "sec" {
			secondSec = n.ID // last one wins
		}
	}
	newFig, err := e.InsertFirstChild(secondSec, "fig")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "inserted fig as node %d\n", newFig)

	// Enumeration restarts on the updated tree.
	fmt.Fprintln(w, "figures now:", e.Count())
	st := e.Stats()
	fmt.Fprintf(w, "structures: %d boxes, width %d, term height %d\n",
		st.Boxes, st.CircuitWidth, st.TermHeight)

	// The same pipeline as a snapshot engine: updates publish immutable
	// versions, and a snapshot taken before an edit keeps answering for
	// its version — that is what makes concurrent readers safe.
	t2, err := enumtrees.ParseTree("(doc (sec (fig) (par)))")
	if err != nil {
		return err
	}
	eng, err := enumtrees.NewEngine(t2, q, enumtrees.Options{})
	if err != nil {
		return err
	}
	before := eng.Snapshot()
	after, _, err := eng.ApplyBatch([]enumtrees.Update{
		{Op: enumtrees.OpInsertFirstChild, Node: t2.Root.ID, Label: "fig"},
		{Op: enumtrees.OpInsertFirstChild, Node: t2.Root.ID, Label: "fig"},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "engine: snapshot v%d sees %d figure(s), v%d sees %d (batch of 2 edits, one publication)\n",
		before.Version(), before.Count(), after.Version(), after.Count())

	// Many subscribers, one query: registering the same automaton again
	// on a QuerySet is deduped onto a shared refcounted pipeline by the
	// multi-query optimizer — k near-duplicate standing queries cost ~1
	// pipeline of repair per edit.
	t3, err := enumtrees.ParseTree("(doc (sec (fig) (fig)) (sec (fig)))")
	if err != nil {
		return err
	}
	qs := enumtrees.NewQuerySet(t3)
	a, err := qs.Register(q, enumtrees.Options{})
	if err != nil {
		return err
	}
	b, err := qs.Register(enumtrees.SelectLabel(alpha, "fig", 0), enumtrees.Options{})
	if err != nil {
		return err
	}
	est := qs.Stats()
	m := qs.Snapshot()
	fmt.Fprintf(w, "query set: %d queries share %d pipeline(s); both count %d/%d figures\n",
		est.Queries, est.Pipelines, m.Query(a).Count(), m.Query(b).Count())
	return nil
}
