package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartRuns smoke-tests the full example flow end to end.
func TestQuickstartRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"figures now: 2",
		"snapshot v1 sees 1 figure(s), v2 sees 3",
		"query set: 2 queries share 1 pipeline(s); both count 3/3 figures",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
