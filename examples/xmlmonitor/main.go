// Command xmlmonitor maintains an MSO query over a mutating XML-like
// document: "report every section that contains a figure without a
// caption". The query is written as an MSO formula (Corollary 8.3),
// compiled once to a tree automaton, and kept up to date through edits
// in logarithmic time — the scenario the paper's introduction motivates
// for tree-shaped data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	enumtrees "repro"
)

var alpha = []enumtrees.Label{"doc", "sec", "par", "fig", "caption"}

func report(e *enumtrees.Enumerator, t *enumtrees.Tree) {
	n := 0
	for asg := range e.Results() {
		node := t.Node(asg[0].Node)
		fmt.Printf("  uncaptioned figure in section node %d (parent %d)\n",
			asg[0].Node, node.Parent.ID)
		n++
	}
	if n == 0 {
		fmt.Println("  all figures captioned ✓")
	}
}

func main() {
	// Φ(x): x is a fig node with no caption child.
	phi := enumtrees.Conj(
		enumtrees.HasLabel{X: 0, Label: "fig"},
		enumtrees.Not{F: enumtrees.Exists{X: 1, F: enumtrees.Conj(
			enumtrees.Sing{X: 1},
			enumtrees.HasLabel{X: 1, Label: "caption"},
			enumtrees.Child{X: 0, Y: 1},
		)}},
	)
	q, err := enumtrees.CompileMSOFirstOrder(phi, alpha, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled MSO query: %d automaton states\n", q.NumStates)

	t, err := enumtrees.ParseTree(
		"(doc (sec (par) (fig (caption))) (sec (fig) (par (fig (caption)))))")
	if err != nil {
		log.Fatal(err)
	}
	e, err := enumtrees.New(t, q, enumtrees.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial document:", t)
	report(e, t)

	// An editing session: captions appear and disappear, figures are
	// added; after each edit the standing query re-answers instantly.
	var uncaptioned enumtrees.NodeID = -1
	for _, n := range t.Nodes() {
		if n.Label == "fig" && n.IsLeaf() {
			uncaptioned = n.ID
		}
	}
	fmt.Println("\nedit: caption the bare figure")
	if _, err := e.InsertFirstChild(uncaptioned, "caption"); err != nil {
		log.Fatal(err)
	}
	report(e, t)

	fmt.Println("\nedit: grow the document with 500 random captioned figures")
	rng := rand.New(rand.NewSource(42))
	secs := []enumtrees.NodeID{}
	for _, n := range t.Nodes() {
		if n.Label == "sec" {
			secs = append(secs, n.ID)
		}
	}
	var lastFig enumtrees.NodeID
	for i := 0; i < 500; i++ {
		fig, err := e.InsertFirstChild(secs[rng.Intn(len(secs))], "fig")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := e.InsertFirstChild(fig, "caption"); err != nil {
			log.Fatal(err)
		}
		lastFig = fig
	}
	report(e, t)

	fmt.Println("\nedit: delete one caption deep in the document")
	var cap enumtrees.NodeID = -1
	for c := t.Node(lastFig).FirstChild; c != nil; c = c.NextSib {
		if c.Label == "caption" {
			cap = c.ID
		}
	}
	if err := e.Delete(cap); err != nil {
		log.Fatal(err)
	}
	report(e, t)

	st := e.Stats()
	fmt.Printf("\nfinal: %d nodes, %d boxes, width %d, %d boxes rebuilt over the session\n",
		t.Size(), st.Boxes, st.CircuitWidth, st.BoxesRebuilt)
}
