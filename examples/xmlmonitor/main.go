// Command xmlmonitor maintains SEVERAL standing monitors over one
// mutating XML-like document — the fan-out scenario the paper's
// introduction motivates: one update stream, many subscribers. The
// monitors share a single QuerySet engine, so the term maintenance of
// every edit is paid once; each monitor only adds its own logarithmic
// box repair. The session shows:
//
//   - an MSO monitor ("every figure without a caption", Corollary 8.3)
//     wired onto the PUSH API: a Subscribe stream delivers, per edit,
//     only the answers gained and lost — computed on the write path in
//     time proportional to the change, so the alerting cost of an edit
//     tracks the diff even when the document holds thousands of matches,
//   - a path monitor ("figures directly under a section", compiled to a
//     compact nondeterministic automaton),
//   - a monitor REGISTERED LATE, halfway through the session, against
//     the already-edited document (it answers as if it had been standing
//     from the start),
//   - a DUPLICATE subscriber: a second dashboard registering the same
//     caption query is deduped onto the standing pipeline by the
//     multi-query optimizer (refcounted — its later departure retires
//     nothing),
//   - unregistering a monitor while the others keep serving.
//
// The bulk-grow phase uses the engine's batched updates: 500
// figure+caption pairs are published as one MultiSnapshot covering every
// monitor.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	enumtrees "repro"
)

var alpha = []enumtrees.Label{"doc", "sec", "par", "fig", "caption"}

func reportUncaptioned(w io.Writer, snap *enumtrees.Snapshot, t *enumtrees.Tree) {
	n := 0
	for asg := range snap.Results() {
		node := t.Node(asg[0].Node)
		fmt.Fprintf(w, "  uncaptioned figure in section node %d (parent %d)\n",
			asg[0].Node, node.Parent.ID)
		n++
	}
	if n == 0 {
		fmt.Fprintln(w, "  all figures captioned ✓")
	}
}

func reportCount(w io.Writer, name string, snap *enumtrees.Snapshot) {
	fmt.Fprintf(w, "  [%s] %d match(es)\n", name, snap.Count())
}

// watchDeltas drains the uncaptioned monitor's Subscribe stream up to
// the just-published version, printing only what CHANGED: a figure that
// lost its caption is gained, a figure that got one is resolved. The
// first few of each are shown by node; the footer carries the totals.
func watchDeltas(w io.Writer, ch <-chan enumtrees.Delta, target uint64) {
	const show = 3
	adds, rems := 0, 0
	for v := uint64(0); v < target; {
		d, ok := <-ch
		if !ok {
			return
		}
		if d.Resync != nil {
			fmt.Fprintf(w, "  [delta] resynced at v%d (%d uncaptioned)\n", d.Version, d.Resync.Count())
		}
		for _, a := range d.Added {
			if adds < show {
				fmt.Fprintf(w, "  [delta] +uncaptioned fig node %d\n", a[0].Node)
			}
			adds++
		}
		for _, a := range d.Removed {
			if rems < show {
				fmt.Fprintf(w, "  [delta] -uncaptioned fig node %d\n", a[0].Node)
			}
			rems++
		}
		v = d.Version
	}
	if adds > show {
		fmt.Fprintf(w, "  [delta]  … %d more gained\n", adds-show)
	}
	if rems > show {
		fmt.Fprintf(w, "  [delta]  … %d more resolved\n", rems-show)
	}
	fmt.Fprintf(w, "  [delta] %d gained, %d resolved\n", adds, rems)
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Φ(x): x is a fig node with no caption child.
	phi := enumtrees.Conj(
		enumtrees.HasLabel{X: 0, Label: "fig"},
		enumtrees.Not{F: enumtrees.Exists{X: 1, F: enumtrees.Conj(
			enumtrees.Sing{X: 1},
			enumtrees.HasLabel{X: 1, Label: "caption"},
			enumtrees.Child{X: 0, Y: 1},
		)}},
	)
	q, err := enumtrees.CompileMSOFirstOrder(phi, alpha, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "compiled MSO query: %d automaton states\n", q.NumStates)

	t, err := enumtrees.ParseTree(
		"(doc (sec (par) (fig (caption))) (sec (fig) (par (fig (caption)))))")
	if err != nil {
		return err
	}

	// One QuerySet serves every monitor; the term work of each edit below
	// is shared by all of them.
	qs := enumtrees.NewQuerySet(t)
	uncap, err := qs.Register(q, enumtrees.Options{})
	if err != nil {
		return err
	}
	secFigs, err := qs.Register(
		enumtrees.MustCompilePath("/doc/sec/fig", alpha, 0), enumtrees.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "standing monitors: %d (uncaptioned figures, /doc/sec/fig)\n", len(qs.Queries()))

	m := qs.Snapshot()
	fmt.Fprintln(w, "initial document:", t)
	reportUncaptioned(w, m.Query(uncap), t)
	reportCount(w, "/doc/sec/fig", m.Query(secFigs))

	// The uncaptioned monitor goes PUSH: from here on it never re-reads
	// its answer set — each publication delivers only the answers gained
	// and lost. The subscription's first delta is the base resync (the
	// base was just printed above, so it is consumed and dropped).
	uncapCh, err := qs.Subscribe(uncap)
	if err != nil {
		return err
	}
	<-uncapCh

	// An editing session: captions appear and disappear, figures are
	// added; after each edit every standing monitor re-answers instantly
	// from the same MultiSnapshot.
	uncaptioned := enumtrees.InvalidNode
	for _, n := range t.Nodes() {
		if n.Label == "fig" && n.IsLeaf() {
			uncaptioned = n.ID
		}
	}
	fmt.Fprintln(w, "\nedit: caption the bare figure")
	_, m, err = qs.InsertFirstChild(uncaptioned, "caption")
	if err != nil {
		return err
	}
	watchDeltas(w, uncapCh, m.Version())
	reportCount(w, "/doc/sec/fig", m.Query(secFigs))

	fmt.Fprintln(w, "\nedit: grow the document with 500 random captioned figures (batched)")
	rng := rand.New(rand.NewSource(42))
	secs := []enumtrees.NodeID{}
	for _, n := range t.Nodes() {
		if n.Label == "sec" {
			secs = append(secs, n.ID)
		}
	}
	// Figures go in as one batch (one publication for all 500, across all
	// monitors); the captions, whose parents are only known after that
	// batch, as a second one.
	figBatch := make([]enumtrees.Update, 500)
	for i := range figBatch {
		figBatch[i] = enumtrees.Update{
			Op:    enumtrees.OpInsertFirstChild,
			Node:  secs[rng.Intn(len(secs))],
			Label: "fig",
		}
	}
	mFigs, figIDs, err := qs.ApplyBatch(figBatch)
	if err != nil {
		return err
	}
	// One publication, 500 new uncaptioned figures: the subscriber gets
	// them as ONE delta, without re-reading the other 500+ answers.
	watchDeltas(w, uncapCh, mFigs.Version())
	capBatch := make([]enumtrees.Update, len(figIDs))
	for i, fig := range figIDs {
		capBatch[i] = enumtrees.Update{Op: enumtrees.OpInsertFirstChild, Node: fig, Label: "caption"}
	}
	fmt.Fprintln(w, "edit: caption them all (batched)")
	m, _, err = qs.ApplyBatch(capBatch)
	if err != nil {
		return err
	}
	watchDeltas(w, uncapCh, m.Version())
	reportCount(w, "/doc/sec/fig", m.Query(secFigs))
	lastFig := figIDs[len(figIDs)-1]

	// A monitor subscribed mid-session: captions anywhere in the
	// document. It is built against the CURRENT version — the 1000+
	// nodes inserted above included — without disturbing the other
	// monitors' structures.
	fmt.Fprintln(w, "\nsubscribe late: caption monitor joins after the bulk growth")
	caps, err := qs.Register(enumtrees.SelectLabel(alpha, "caption", 0), enumtrees.Options{})
	if err != nil {
		return err
	}
	m = qs.Snapshot()
	reportCount(w, "captions", m.Query(caps))

	// A second dashboard subscribes the SAME caption query. The
	// multi-query optimizer recognizes the content-equal automaton and
	// dedupes the registration onto the standing caption pipeline — no
	// construction walk, no extra repair on future edits.
	fmt.Fprintln(w, "\nsubscribe twin: a second dashboard wants the same caption monitor")
	capsTwin, err := qs.Register(enumtrees.SelectLabel(alpha, "caption", 0), enumtrees.Options{})
	if err != nil {
		return err
	}
	est := qs.Stats()
	fmt.Fprintf(w, "  deduped: %d pipelines serve %d monitors (%d registration(s) deduped)\n",
		est.Pipelines, est.Queries, est.RegistrationsDeduped)
	reportCount(w, "captions (twin)", qs.Snapshot().Query(capsTwin))

	fmt.Fprintln(w, "\nedit: delete one caption deep in the document")
	capID := enumtrees.InvalidNode
	for c := t.Node(lastFig).FirstChild; c != nil; c = c.NextSib {
		if c.Label == "caption" {
			capID = c.ID
		}
	}
	m, err = qs.Delete(capID)
	if err != nil {
		return err
	}
	watchDeltas(w, uncapCh, m.Version())
	reportCount(w, "/doc/sec/fig", m.Query(secFigs))
	reportCount(w, "captions", m.Query(caps))
	reportCount(w, "captions (twin)", m.Query(capsTwin))

	// The twin dashboard leaves. Its registration only held a refcount on
	// the shared caption pipeline, so unregistering it retires nothing:
	// the original caption monitor keeps serving the same boxes.
	fmt.Fprintln(w, "\nunsubscribe: twin dashboard leaves (shared pipeline stays)")
	if err := qs.Unregister(capsTwin); err != nil {
		return err
	}
	reportCount(w, "captions", qs.Snapshot().Query(caps))

	// Unsubscribe the path monitor: unregistration itself publishes the
	// shrunk set, and the remaining monitors keep serving.
	fmt.Fprintln(w, "\nunsubscribe: /doc/sec/fig monitor leaves")
	if err := qs.Unregister(secFigs); err != nil {
		return err
	}
	m = qs.Snapshot()
	fmt.Fprintf(w, "  monitors standing: %d (snapshot v%d)\n", m.Len(), m.Version())
	reportUncaptioned(w, m.Query(uncap), t)

	st := m.Query(uncap).Stats()
	fmt.Fprintf(w, "\nfinal: %d nodes, %d boxes, width %d, %d boxes rebuilt over the session\n",
		t.Size(), st.Boxes, st.CircuitWidth, st.BoxesRebuilt)
	return nil
}
