// Command xmlmonitor maintains an MSO query over a mutating XML-like
// document: "report every section that contains a figure without a
// caption". The query is written as an MSO formula (Corollary 8.3),
// compiled once to a tree automaton, and kept up to date through edits
// in logarithmic time — the scenario the paper's introduction motivates
// for tree-shaped data. The bulk-grow phase uses the engine's batched
// updates: 500 figure+caption pairs are published as one snapshot.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	enumtrees "repro"
)

var alpha = []enumtrees.Label{"doc", "sec", "par", "fig", "caption"}

func report(w io.Writer, snap *enumtrees.Snapshot, t *enumtrees.Tree) {
	n := 0
	for asg := range snap.Results() {
		node := t.Node(asg[0].Node)
		fmt.Fprintf(w, "  uncaptioned figure in section node %d (parent %d)\n",
			asg[0].Node, node.Parent.ID)
		n++
	}
	if n == 0 {
		fmt.Fprintln(w, "  all figures captioned ✓")
	}
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Φ(x): x is a fig node with no caption child.
	phi := enumtrees.Conj(
		enumtrees.HasLabel{X: 0, Label: "fig"},
		enumtrees.Not{F: enumtrees.Exists{X: 1, F: enumtrees.Conj(
			enumtrees.Sing{X: 1},
			enumtrees.HasLabel{X: 1, Label: "caption"},
			enumtrees.Child{X: 0, Y: 1},
		)}},
	)
	q, err := enumtrees.CompileMSOFirstOrder(phi, alpha, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "compiled MSO query: %d automaton states\n", q.NumStates)

	t, err := enumtrees.ParseTree(
		"(doc (sec (par) (fig (caption))) (sec (fig) (par (fig (caption)))))")
	if err != nil {
		return err
	}
	eng, err := enumtrees.NewEngine(t, q, enumtrees.Options{})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "initial document:", t)
	report(w, eng.Snapshot(), t)

	// An editing session: captions appear and disappear, figures are
	// added; after each edit the standing query re-answers instantly.
	var uncaptioned enumtrees.NodeID = -1
	for _, n := range t.Nodes() {
		if n.Label == "fig" && n.IsLeaf() {
			uncaptioned = n.ID
		}
	}
	fmt.Fprintln(w, "\nedit: caption the bare figure")
	_, capSnap, err := eng.InsertFirstChild(uncaptioned, "caption")
	if err != nil {
		return err
	}
	report(w, capSnap, t)

	fmt.Fprintln(w, "\nedit: grow the document with 500 random captioned figures (batched)")
	rng := rand.New(rand.NewSource(42))
	secs := []enumtrees.NodeID{}
	for _, n := range t.Nodes() {
		if n.Label == "sec" {
			secs = append(secs, n.ID)
		}
	}
	// Figures go in as one batch (one snapshot publication for all 500);
	// the captions, whose parents are only known after that batch, as a
	// second one.
	figBatch := make([]enumtrees.Update, 500)
	for i := range figBatch {
		figBatch[i] = enumtrees.Update{
			Op:    enumtrees.OpInsertFirstChild,
			Node:  secs[rng.Intn(len(secs))],
			Label: "fig",
		}
	}
	_, figIDs, err := eng.ApplyBatch(figBatch)
	if err != nil {
		return err
	}
	capBatch := make([]enumtrees.Update, len(figIDs))
	for i, fig := range figIDs {
		capBatch[i] = enumtrees.Update{Op: enumtrees.OpInsertFirstChild, Node: fig, Label: "caption"}
	}
	snap, _, err := eng.ApplyBatch(capBatch)
	if err != nil {
		return err
	}
	report(w, snap, t)
	lastFig := figIDs[len(figIDs)-1]

	fmt.Fprintln(w, "\nedit: delete one caption deep in the document")
	var cap enumtrees.NodeID = -1
	for c := t.Node(lastFig).FirstChild; c != nil; c = c.NextSib {
		if c.Label == "caption" {
			cap = c.ID
		}
	}
	snap, err = eng.Delete(cap)
	if err != nil {
		return err
	}
	report(w, snap, t)

	st := eng.Snapshot().Stats()
	fmt.Fprintf(w, "\nfinal: %d nodes, %d boxes, width %d, %d boxes rebuilt over the session\n",
		t.Size(), st.Boxes, st.CircuitWidth, st.BoxesRebuilt)
	return nil
}
