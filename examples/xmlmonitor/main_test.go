package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestXMLMonitorRuns smoke-tests the multi-monitor session: shared
// QuerySet, a push subscriber on the uncaptioned monitor (per-edit
// answer deltas instead of re-reads), 500-figure batched growth, late
// registration, a duplicate subscriber deduped onto the shared
// pipeline, unregister.
func TestXMLMonitorRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"compiled MSO query",
		"standing monitors: 2",
		"uncaptioned figure in section node",
		"[delta] -uncaptioned fig node 6", // captioning the bare figure streams one removal
		"[delta] 0 gained, 1 resolved",
		"[delta]  … 497 more gained", // the 500-figure batch arrives as ONE delta
		"[delta] 500 gained, 0 resolved",
		"[delta] 0 gained, 500 resolved", // and the caption batch cancels it
		"[delta] 1 gained, 0 resolved",   // the deep caption delete streams one addition
		"subscribe late: caption monitor",
		"[captions] 503 match(es)", // at registration, against the grown document
		"subscribe twin: a second dashboard wants the same caption monitor",
		"deduped: 3 pipelines serve 4 monitors (1 registration(s) deduped)",
		"[captions (twin)] 503 match(es)", // the twin answers from the shared pipeline
		"[captions (twin)] 502 match(es)", // and tracks the caption delete
		"[captions] 502 match(es)",        // after the caption delete
		"unsubscribe: twin dashboard leaves (shared pipeline stays)",
		"unsubscribe: /doc/sec/fig monitor leaves",
		"monitors standing: 2",
		"final: 1010 nodes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
