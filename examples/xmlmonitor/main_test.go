package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestXMLMonitorRuns smoke-tests the multi-monitor session: shared
// QuerySet, 500-figure batched growth, late registration, unregister.
func TestXMLMonitorRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"compiled MSO query",
		"standing monitors: 2",
		"all figures captioned ✓",
		"uncaptioned figure in section node",
		"subscribe late: caption monitor",
		"[captions] 503 match(es)", // at registration, against the grown document
		"[captions] 502 match(es)", // after the caption delete
		"unsubscribe: /doc/sec/fig monitor leaves",
		"monitors standing: 2",
		"final: 1010 nodes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
