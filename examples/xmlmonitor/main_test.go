package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestXMLMonitorRuns smoke-tests the MSO monitoring session, including
// the 500-figure batched growth.
func TestXMLMonitorRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"compiled MSO query",
		"all figures captioned ✓",
		"uncaptioned figure in section node",
		"final: 1010 nodes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
