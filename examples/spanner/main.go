// Command spanner runs information extraction over a mutating log line
// (Theorem 8.5 / document spanners): the pattern captures error codes
// "E<digits>" and the extraction stays current as the text is edited —
// the words-under-updates scenario of Section 8. Edits go through the
// snapshot word engine, so every shown extraction reads one published
// version.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	enumtrees "repro"
)

const text = "boot ok E17 disk warm E4 net flap"

func digits() []enumtrees.Pattern {
	var ds []enumtrees.Pattern
	for c := '0'; c <= '9'; c++ {
		ds = append(ds, enumtrees.Lit{Label: enumtrees.Label(string(c))})
	}
	return ds
}

// nonDigits matches one position that is not a digit (needed because the
// pattern language has no negated classes: enumerate the alphabet).
func nonDigits(alpha []enumtrees.Label) enumtrees.Pattern {
	var ls []enumtrees.Pattern
	for _, l := range alpha {
		if l[0] < '0' || l[0] > '9' {
			ls = append(ls, enumtrees.Lit{Label: l})
		}
	}
	return enumtrees.AltP{Branches: ls}
}

func show(w io.Writer, e *enumtrees.WordEngine) {
	ids, labels := e.Word()
	pos := map[enumtrees.NodeID]int{}
	var b []byte
	for i, id := range ids {
		pos[id] = i
		b = append(b, labels[i][0])
	}
	fmt.Fprintf(w, "text: %q\n", string(b))
	n := 0
	for asg := range e.Snapshot().Results() {
		spans := enumtrees.Spans(asg)
		var ps []int
		for _, id := range spans[0] {
			ps = append(ps, pos[id])
		}
		sort.Ints(ps)
		code := ""
		for _, p := range ps {
			code += string(labels[p])
		}
		fmt.Fprintf(w, "  code E%s at positions %v\n", code, ps)
		n++
	}
	if n == 0 {
		fmt.Fprintln(w, "  no error codes")
	}
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	alpha := enumtrees.ByteAlphabet(text + "E0123456789")
	// Pattern: anywhere, "E" followed by a maximal captured run of
	// digits: the run ends at a non-digit or at the end of the word.
	pat := enumtrees.Cat(
		enumtrees.StarP{Inner: enumtrees.AnyLetter{}},
		enumtrees.Lit{Label: "E"},
		enumtrees.Capture{Var: 0, Inner: enumtrees.PlusP{Inner: enumtrees.AltP{Branches: digits()}}},
		enumtrees.OptP{Inner: enumtrees.Cat(nonDigits(alpha), enumtrees.StarP{Inner: enumtrees.AnyLetter{}})},
	)
	q, err := enumtrees.CompilePattern(pat, alpha)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "compiled spanner: %d WVA states\n", q.NumStates)

	e, err := enumtrees.NewWordEngine(enumtrees.TextLabels(text), q, enumtrees.Options{})
	if err != nil {
		return err
	}
	show(w, e)

	// Live edit 1: the operator fixes "E4" to "E42" (insert a digit).
	fmt.Fprintln(w, "\nedit: E4 -> E42")
	ids, labels := e.Word()
	for i := range labels {
		if labels[i] == "E" && i+1 < len(labels) && labels[i+1] == "4" {
			if _, _, err := e.InsertAfter(ids[i+1], "2"); err != nil {
				return err
			}
			break
		}
	}
	show(w, e)

	// Live edit 2: a new error is appended.
	fmt.Fprintln(w, "\nedit: append \" E9\"")
	ids, _ = e.Word()
	last := ids[len(ids)-1]
	for _, c := range " E9" {
		var err error
		last, _, err = e.InsertAfter(last, enumtrees.Label(string(c)))
		if err != nil {
			return err
		}
	}
	show(w, e)

	// Live edit 3: the first error line is erased as ONE batched update —
	// four deletes, a single publication, box repair amortized.
	fmt.Fprintln(w, "\nedit: erase \"E17 \" (one batch)")
	ids, labels = e.Word()
	for i := 0; i+3 < len(labels); i++ {
		if labels[i] == "E" && labels[i+1] == "1" && labels[i+2] == "7" {
			var batch []enumtrees.Update
			for k := 0; k < 4; k++ {
				batch = append(batch, enumtrees.Update{Op: enumtrees.OpDelete, Node: ids[i+k]})
			}
			if _, _, err := e.ApplyBatch(batch); err != nil {
				return err
			}
			break
		}
	}
	show(w, e)
	return nil
}
