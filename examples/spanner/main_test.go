package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSpannerRuns smoke-tests the extraction-under-updates flow.
func TestSpannerRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"code E17",       // initial extraction
		"code E42",       // after the insert edit
		"code E9",        // after the append
		`"boot ok disk `, // after the batched erase
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The final extraction (after the batched erase) must not report E17.
	final := out[strings.LastIndex(out, "text:"):]
	if strings.Contains(final, "code E17") {
		t.Fatalf("E17 still extracted after the batched erase:\n%s", out)
	}
}
